#include "net/frame.hpp"

#include <cstring>

#include "util/checksum.hpp"
#include "util/error.hpp"

namespace wck::net {
namespace {

[[nodiscard]] std::uint32_t read_u32le(const std::byte* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

/// Validates the 16-byte header; returns the payload length.
[[nodiscard]] std::size_t parse_header(const std::byte* h) {
  if (read_u32le(h) != kFrameMagic) throw FormatError("net frame: bad magic");
  if (static_cast<std::uint8_t>(h[4]) != kFrameVersion) {
    throw FormatError("net frame: unsupported version " +
                      std::to_string(static_cast<unsigned>(h[4])));
  }
  if (h[6] != std::byte{0} || h[7] != std::byte{0}) {
    throw FormatError("net frame: reserved bytes not zero");
  }
  const std::uint32_t len = read_u32le(h + 8);
  if (len > kMaxFramePayload) {
    throw FormatError("net frame: payload length " + std::to_string(len) +
                      " exceeds limit " + std::to_string(kMaxFramePayload));
  }
  return len;
}

}  // namespace

Bytes encode_frame(std::uint8_t type, std::span<const std::byte> payload) {
  if (payload.size() > kMaxFramePayload) {
    throw InvalidArgumentError("net frame: payload too large (" +
                               std::to_string(payload.size()) + " bytes)");
  }
  ByteWriter w;
  w.u32(kFrameMagic);
  w.u8(kFrameVersion);
  w.u8(type);
  w.u16(0);  // reserved
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(crc32(payload));
  w.raw(payload);
  return w.take();
}

Frame decode_frame(std::span<const std::byte> data) {
  if (data.size() < kFrameHeaderBytes) throw FormatError("net frame: truncated header");
  const std::size_t len = parse_header(data.data());
  if (data.size() != kFrameHeaderBytes + len) {
    throw FormatError("net frame: length field says " + std::to_string(len) +
                      " payload bytes but " +
                      std::to_string(data.size() - kFrameHeaderBytes) + " present");
  }
  const std::span<const std::byte> payload = data.subspan(kFrameHeaderBytes, len);
  if (crc32(payload) != read_u32le(data.data() + 12)) {
    throw CorruptDataError("net frame: payload CRC mismatch");
  }
  Frame f;
  f.type = static_cast<std::uint8_t>(data[5]);
  f.payload.assign(payload.begin(), payload.end());
  return f;
}

void FrameDecoder::feed(std::span<const std::byte> data) {
  if (poisoned_) throw FormatError("net frame: decoder poisoned by earlier error");
  // Drop the consumed prefix before growing, keeping the buffer
  // proportional to the frames actually in flight.
  if (consumed_ > 0) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
  check_header();
}

void FrameDecoder::check_header() {
  if (header_checked_ || buffered() < kFrameHeaderBytes) return;
  try {
    (void)parse_header(buf_.data() + consumed_);
  } catch (const Error&) {
    poisoned_ = true;
    throw;
  }
  header_checked_ = true;
}

std::optional<Frame> FrameDecoder::next() {
  if (poisoned_) throw FormatError("net frame: decoder poisoned by earlier error");
  check_header();
  if (!header_checked_) return std::nullopt;
  const std::byte* h = buf_.data() + consumed_;
  const std::size_t len = parse_header(h);
  if (buffered() < kFrameHeaderBytes + len) return std::nullopt;
  const std::span<const std::byte> payload(h + kFrameHeaderBytes, len);
  if (crc32(payload) != read_u32le(h + 12)) {
    poisoned_ = true;
    throw CorruptDataError("net frame: payload CRC mismatch");
  }
  Frame f;
  f.type = static_cast<std::uint8_t>(h[5]);
  f.payload.assign(payload.begin(), payload.end());
  consumed_ += kFrameHeaderBytes + len;
  header_checked_ = false;
  return f;
}

}  // namespace wck::net
