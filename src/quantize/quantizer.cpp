#include "quantize/quantizer.hpp"

#include <algorithm>
#include <array>
#include <string>

#include "simd/dispatch.hpp"
#include "util/error.hpp"

namespace wck {
namespace {

void check_divisions(int n) {
  if (n < 1 || n > 256) {
    throw InvalidArgumentError("division number n must be in 1..256 (1-byte indexes), got " +
                               std::to_string(n));
  }
}

struct MinMax {
  double min;
  double max;
};

MinMax min_max(std::span<const double> values) {
  MinMax r{0.0, 0.0};
  simd::kernels().range_min_max(values.data(), values.size(), &r.min, &r.max);
  return r;
}

/// Partition index of v in an equal-width grid of `n` cells over
/// [lo, hi], clamped to [0, n-1]. Shared with the batch kernels.
int grid_index(double v, double lo, double inv_width, int n) noexcept {
  return simd::grid_index_one(v, lo, inv_width, n);
}

/// Batch size for grid_index_batch accumulation passes: the index
/// buffer stays L1-resident while the vector kernel amortizes.
constexpr std::size_t kBatch = 4096;

/// Applies `fold(index, value)` to every value's grid index, computing
/// indexes a batch at a time through the dispatched kernel.
template <typename Fold>
void for_each_grid_index(std::span<const double> values, double lo, double inv_width, int n,
                         Fold&& fold) {
  const simd::KernelTable& k = simd::kernels();
  std::array<std::int32_t, kBatch> idx;
  for (std::size_t off = 0; off < values.size(); off += kBatch) {
    const std::size_t m = std::min(kBatch, values.size() - off);
    k.grid_index_batch(values.data() + off, m, lo, inv_width, n, idx.data());
    for (std::size_t i = 0; i < m; ++i) {
      fold(static_cast<std::size_t>(idx[i]), values[off + i]);
    }
  }
}

}  // namespace

Histogram Histogram::build(std::span<const double> values, int bins) {
  if (bins < 1) throw InvalidArgumentError("histogram needs >= 1 bin");
  Histogram h;
  h.counts.assign(static_cast<std::size_t>(bins), 0);
  if (values.empty()) return h;
  const auto [lo, hi] = min_max(values);
  h.min = lo;
  h.max = hi;
  const double inv = hi > lo ? bins / (hi - lo) : 0.0;
  for_each_grid_index(values, lo, inv, bins, [&h](std::size_t p, double) { ++h.counts[p]; });
  return h;
}

int Histogram::bin_of(double v) const noexcept {
  const int bins = static_cast<int>(counts.size());
  const double inv = max > min ? bins / (max - min) : 0.0;
  return grid_index(v, min, inv, bins);
}

int QuantizationScheme::classify(double v) const noexcept {
  if (averages_.empty()) return kUnquantized;
  if (kind_ == QuantizerKind::kSpike) {
    const int dp = grid_index(v, domain_min_, inv_domain_width_,
                              static_cast<int>(spike_mask_.size()));
    if (!spike_mask_[static_cast<std::size_t>(dp)]) return kUnquantized;
    // A value in a spike partition always lies inside the quantization
    // span (the span covers all spike partitions); clamping guards FP
    // boundary cases only.
  }
  return grid_index(v, quant_min_, inv_width_, divisions_);
}

void QuantizationScheme::classify_batch(std::span<const double> values,
                                        std::span<std::int32_t> out) const {
  if (values.size() != out.size()) {
    throw InvalidArgumentError("classify_batch: output size does not match input");
  }
  if (values.empty()) return;
  if (averages_.empty()) {
    std::fill(out.begin(), out.end(), kUnquantized);
    return;
  }
  const simd::KernelTable& k = simd::kernels();
  k.grid_index_batch(values.data(), values.size(), quant_min_, inv_width_, divisions_,
                     out.data());
  if (kind_ == QuantizerKind::kSpike) {
    const auto d = static_cast<std::int32_t>(spike_mask_.size());
    std::array<std::int32_t, kBatch> dp;
    for (std::size_t off = 0; off < values.size(); off += kBatch) {
      const std::size_t m = std::min(kBatch, values.size() - off);
      k.grid_index_batch(values.data() + off, m, domain_min_, inv_domain_width_, d, dp.data());
      for (std::size_t i = 0; i < m; ++i) {
        if (!spike_mask_[static_cast<std::size_t>(dp[i])]) out[off + i] = kUnquantized;
      }
    }
  }
}

QuantizationScheme QuantizationScheme::analyze_simple(std::span<const double> values, int n,
                                                      const ValueRange* range) {
  check_divisions(n);
  QuantizationScheme s;
  s.kind_ = QuantizerKind::kSimple;
  s.divisions_ = n;
  if (values.empty()) return s;

  const auto [lo, hi] = range != nullptr ? MinMax{range->min, range->max} : min_max(values);
  s.quant_min_ = lo;
  s.quant_max_ = hi;
  s.inv_width_ = hi > lo ? n / (hi - lo) : 0.0;

  // Mean of the values inside each partition (Fig. 4 step 2). Empty
  // partitions get their midpoint — such entries are never referenced
  // but keep the table dense and deterministic.
  std::vector<double> sums(static_cast<std::size_t>(n), 0.0);
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(n), 0);
  for_each_grid_index(values, lo, s.inv_width_, n, [&sums, &counts](std::size_t p, double v) {
    sums[p] += v;
    ++counts[p];
  });
  s.averages_.resize(static_cast<std::size_t>(n));
  const double width = hi > lo ? (hi - lo) / n : 0.0;
  for (std::size_t p = 0; p < s.averages_.size(); ++p) {
    s.averages_[p] =
        counts[p] > 0 ? sums[p] / static_cast<double>(counts[p]) : lo + width * (p + 0.5);
  }
  return s;
}

QuantizationScheme QuantizationScheme::analyze_spike(std::span<const double> values, int n,
                                                     int d, const ValueRange* range) {
  check_divisions(n);
  if (d < 1) throw InvalidArgumentError("spike partition count d must be >= 1");
  QuantizationScheme s;
  s.kind_ = QuantizerKind::kSpike;
  s.divisions_ = n;
  if (values.empty()) return s;

  const auto [lo, hi] = range != nullptr ? MinMax{range->min, range->max} : min_max(values);
  s.domain_min_ = lo;
  s.domain_max_ = hi;
  s.inv_domain_width_ = hi > lo ? d / (hi - lo) : 0.0;

  // Spike detection (Eq. 4): partitions holding at least the average
  // number of values per partition.
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(d), 0);
  for_each_grid_index(values, lo, s.inv_domain_width_, d,
                      [&counts](std::size_t p, double) { ++counts[p]; });
  const double threshold = static_cast<double>(values.size()) / d;
  s.spike_mask_.assign(static_cast<std::size_t>(d), false);
  int first_spike = -1;
  int last_spike = -1;
  for (int p = 0; p < d; ++p) {
    if (static_cast<double>(counts[static_cast<std::size_t>(p)]) >= threshold) {
      s.spike_mask_[static_cast<std::size_t>(p)] = true;
      if (first_spike < 0) first_spike = p;
      last_spike = p;
    }
  }
  if (first_spike < 0) {
    // No partition reaches the average => degenerate (cannot happen for
    // d >= 1 with nonempty input: some partition always holds >= mean).
    first_spike = 0;
    last_spike = d - 1;
    std::fill(s.spike_mask_.begin(), s.spike_mask_.end(), true);
  }

  // Simple quantization with n partitions across the span of detected
  // partitions (Fig. 4 step 5). Values in non-spike partitions within
  // the span remain exact; classify() filters them by spike_mask_.
  const double dwidth = hi > lo ? (hi - lo) / d : 0.0;
  s.quant_min_ = lo + dwidth * first_spike;
  s.quant_max_ = lo + dwidth * (last_spike + 1);
  if (last_spike == d - 1) s.quant_max_ = hi;  // avoid FP drift past the top
  s.inv_width_ = s.quant_max_ > s.quant_min_ ? n / (s.quant_max_ - s.quant_min_) : 0.0;

  std::vector<double> sums(static_cast<std::size_t>(n), 0.0);
  std::vector<std::uint64_t> qcounts(static_cast<std::size_t>(n), 0);
  {
    const simd::KernelTable& k = simd::kernels();
    std::array<std::int32_t, kBatch> dp;
    std::array<std::int32_t, kBatch> qp;
    for (std::size_t off = 0; off < values.size(); off += kBatch) {
      const std::size_t m = std::min(kBatch, values.size() - off);
      k.grid_index_batch(values.data() + off, m, lo, s.inv_domain_width_, d, dp.data());
      k.grid_index_batch(values.data() + off, m, s.quant_min_, s.inv_width_, n, qp.data());
      for (std::size_t i = 0; i < m; ++i) {
        if (!s.spike_mask_[static_cast<std::size_t>(dp[i])]) continue;
        sums[static_cast<std::size_t>(qp[i])] += values[off + i];
        ++qcounts[static_cast<std::size_t>(qp[i])];
      }
    }
  }
  s.averages_.resize(static_cast<std::size_t>(n));
  const double qwidth = s.quant_max_ > s.quant_min_ ? (s.quant_max_ - s.quant_min_) / n : 0.0;
  for (std::size_t p = 0; p < s.averages_.size(); ++p) {
    s.averages_[p] = qcounts[p] > 0 ? sums[p] / static_cast<double>(qcounts[p])
                                    : s.quant_min_ + qwidth * (p + 0.5);
  }
  return s;
}

QuantizationScheme QuantizationScheme::analyze(std::span<const double> values,
                                               const QuantizerConfig& cfg,
                                               const ValueRange* range) {
  switch (cfg.kind) {
    case QuantizerKind::kSimple:
      return analyze_simple(values, cfg.divisions, range);
    case QuantizerKind::kSpike:
      return analyze_spike(values, cfg.divisions, cfg.spike_partitions, range);
  }
  throw InvalidArgumentError("unknown quantizer kind");
}

}  // namespace wck
