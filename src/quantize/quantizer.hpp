// Quantization of high-frequency wavelet bands (paper Sec. III-B).
//
// Two methods:
//  * Simple quantization: the value range is split into `n` equal
//    partitions; every value is replaced by the mean of its partition
//    (Fig. 4 steps 1-2). All values are quantized.
//  * Proposed (spike) quantization: the range is first split into `d`
//    partitions; partitions holding at least Ntotal/d values form the
//    "spike" (Eq. 4, Fig. 4 steps 3-4). Simple quantization with `n`
//    partitions is applied only across the span of the spike partitions;
//    values outside spike partitions stay exact (Fig. 4 step 5). This
//    keeps rare large-magnitude coefficients unquantized, cutting the
//    worst-case error by orders of magnitude at a small size cost.
//
// After quantization at most `n` distinct representative values (the
// `averages` table) appear among quantized positions, so each quantized
// value is encodable as a 1-byte table index (Sec. III-C requires
// n <= 256).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace wck {

enum class QuantizerKind : std::uint8_t {
  kSimple = 0,
  kSpike = 1,  ///< the paper's "proposed quantization"
};

struct QuantizerConfig {
  QuantizerKind kind = QuantizerKind::kSpike;
  /// Division number `n` (paper sweeps 1..128). Must be 1..256.
  int divisions = 128;
  /// Spike-detection partition count `d` (paper fixes 64). Spike only.
  int spike_partitions = 64;
};

/// Precomputed exact extrema of a value set. Callers that already walk
/// the data (the compressor collects high-band coefficients in a pass of
/// its own) can fold min/max during that walk and hand the result to
/// analyze(), which then skips its leading range scan — the bands are
/// otherwise scanned twice. The values must be the true extrema of the
/// span passed to analyze(); results are bit-identical either way.
struct ValueRange {
  double min = 0.0;
  double max = 0.0;
};

/// The data-dependent outcome of analyzing one value set: the averages
/// table plus everything classify() needs. Serialized with the payload
/// so decompression can rebuild values from indexes.
class QuantizationScheme {
 public:
  /// Index meaning "this value is not quantized".
  static constexpr int kUnquantized = -1;

  /// Representative values; quantized positions store an index into this.
  [[nodiscard]] const std::vector<double>& averages() const noexcept { return averages_; }

  /// Returns the averages-table index for `v`, or kUnquantized if `v`
  /// must be stored exactly (outside the spike).
  [[nodiscard]] int classify(double v) const noexcept;

  /// Batch classify through the dispatched SIMD kernels:
  /// out[i] == classify(values[i]) for every i (bit-identical at every
  /// dispatch level). out.size() must equal values.size().
  void classify_batch(std::span<const double> values, std::span<std::int32_t> out) const;

  /// True if the scheme quantizes nothing (degenerate empty input).
  [[nodiscard]] bool empty() const noexcept { return averages_.empty(); }

  [[nodiscard]] QuantizerKind kind() const noexcept { return kind_; }

  // --- construction ---

  /// Analyzes `values` with simple quantization into `n` partitions.
  /// `range`, when non-null, supplies the precomputed extrema of
  /// `values` and elides the internal min/max pass.
  static QuantizationScheme analyze_simple(std::span<const double> values, int n,
                                           const ValueRange* range = nullptr);

  /// Analyzes `values` with the proposed spike quantization (Eq. 4).
  static QuantizationScheme analyze_spike(std::span<const double> values, int n, int d,
                                          const ValueRange* range = nullptr);

  /// Dispatches on config.kind.
  static QuantizationScheme analyze(std::span<const double> values, const QuantizerConfig& cfg,
                                    const ValueRange* range = nullptr);

  // --- serialization (used by the encode subsystem) ---

  /// Fields needed to reconstruct classify() on the decompress side are
  /// NOT serialized: decompression only needs averages(). These
  /// accessors exist for tests and diagnostics.
  [[nodiscard]] double quant_min() const noexcept { return quant_min_; }
  [[nodiscard]] double quant_max() const noexcept { return quant_max_; }
  [[nodiscard]] double domain_min() const noexcept { return domain_min_; }
  [[nodiscard]] double domain_max() const noexcept { return domain_max_; }
  [[nodiscard]] const std::vector<bool>& spike_mask() const noexcept { return spike_mask_; }

 private:
  QuantizerKind kind_ = QuantizerKind::kSimple;
  std::vector<double> averages_;
  // Quantization span (simple: whole domain; spike: span of detected
  // partitions).
  double quant_min_ = 0.0;
  double quant_max_ = 0.0;
  double inv_width_ = 0.0;  ///< divisions / (quant_max - quant_min), 0 if degenerate
  int divisions_ = 0;
  // Spike-only: the d-grid over the full domain and its detected mask.
  double domain_min_ = 0.0;
  double domain_max_ = 0.0;
  double inv_domain_width_ = 0.0;
  std::vector<bool> spike_mask_;
};

/// Equal-width histogram helper (used by spike detection and benches).
struct Histogram {
  double min = 0.0;
  double max = 0.0;
  std::vector<std::uint64_t> counts;

  /// Builds a `bins`-bin histogram over [min(values), max(values)].
  static Histogram build(std::span<const double> values, int bins);

  /// Bin index of `v` (clamped to the edge bins).
  [[nodiscard]] int bin_of(double v) const noexcept;
};

}  // namespace wck
