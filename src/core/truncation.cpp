#include "core/truncation.hpp"

#include <bit>

#include "deflate/deflate.hpp"
#include "util/error.hpp"

namespace wck {
namespace {

constexpr std::uint32_t kMagic = 0x54524B57;  // "WKRT" little-endian

void check_bits(int keep) {
  if (keep < 0 || keep > 52) {
    throw InvalidArgumentError("keep_mantissa_bits must be in 0..52");
  }
}

}  // namespace

void truncate_mantissa(std::span<double> values, int keep_mantissa_bits) {
  check_bits(keep_mantissa_bits);
  const int drop = 52 - keep_mantissa_bits;
  if (drop == 0) return;
  const std::uint64_t mask = ~((std::uint64_t{1} << drop) - 1);
  for (double& v : values) {
    v = std::bit_cast<double>(std::bit_cast<std::uint64_t>(v) & mask);
  }
}

Bytes truncation_compress(const NdArray<double>& array, int keep_mantissa_bits,
                          int deflate_level) {
  check_bits(keep_mantissa_bits);
  NdArray<double> work = array;
  truncate_mantissa(work.values(), keep_mantissa_bits);

  ByteWriter raw;
  raw.u8(static_cast<std::uint8_t>(array.rank()));
  for (std::size_t a = 0; a < array.rank(); ++a) raw.varint(array.extent(a));
  raw.f64_array(work.values());

  ByteWriter w;
  w.u32(kMagic);
  w.u8(static_cast<std::uint8_t>(keep_mantissa_bits));
  const Bytes body = zlib_compress(raw.buffer(), DeflateOptions{deflate_level});
  w.raw(body.data(), body.size());
  return w.take();
}

NdArray<double> truncation_decompress(std::span<const std::byte> data) {
  ByteReader r(data);
  if (r.u32() != kMagic) throw FormatError("truncation: bad magic");
  const int keep = r.u8();
  check_bits(keep);
  const Bytes raw = zlib_decompress(data.subspan(r.position()));

  ByteReader rr(raw);
  const std::uint8_t rank = rr.u8();
  if (rank < 1 || rank > kMaxRank) throw FormatError("truncation: invalid rank");
  Shape shape = Shape::of_rank(rank);
  for (std::size_t a = 0; a < rank; ++a) shape[a] = rr.varint();
  NdArray<double> out(shape);
  rr.f64_array(out.values());
  if (!rr.exhausted()) throw FormatError("truncation: trailing bytes");
  return out;
}

}  // namespace wck
