// Mantissa-truncation lossy baseline.
//
// A common alternative to transform-based lossy compression for FP
// checkpoints: zero the low mantissa bits of every double (bounding the
// pointwise *relative* error at 2^-kept) and let the entropy stage eat
// the resulting runs of zero bytes. Provided as an ablation comparator
// for the paper's wavelet pipeline: truncation bounds per-value relative
// error but cannot exploit spatial smoothness, so at equal error budget
// it compresses far less than the wavelet approach on mesh data.
#pragma once

#include <span>

#include "ndarray/ndarray.hpp"
#include "util/bytes.hpp"

namespace wck {

/// Compresses by keeping only the top `keep_mantissa_bits` (0..52) of
/// each double's mantissa, then deflating. Self-describing output.
[[nodiscard]] Bytes truncation_compress(const NdArray<double>& array, int keep_mantissa_bits,
                                        int deflate_level = 6);

/// Inverse of truncation_compress (returns the truncated values).
[[nodiscard]] NdArray<double> truncation_decompress(std::span<const std::byte> data);

/// The truncation itself (in place), exposed for tests: zeroes the low
/// (52 - keep) mantissa bits of every element.
void truncate_mantissa(std::span<double> values, int keep_mantissa_bits);

}  // namespace wck
