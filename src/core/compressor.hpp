// The paper's primary contribution: floating-point lossy compression for
// checkpoints (Fig. 1). Pipeline:
//
//   1. Haar wavelet transformation        (src/wavelet, Sec. III-A)
//   2. Quantization of high-freq bands    (src/quantize, Sec. III-B)
//   3. 1-byte index encoding              (src/encode, Sec. III-C)
//   4. Output formatting w/ bitmap        (src/encode, Sec. III-D)
//   5. gzip/deflate of the formatted data (src/deflate)
//
// Every stage is timed individually so benchmarks can reproduce the
// paper's Fig. 9 cost breakdown (wavelet / quantization+encoding /
// temporary-file write / gzip / other).
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>

#include "deflate/parallel.hpp"
#include "encode/payload.hpp"
#include "ndarray/ndarray.hpp"
#include "quantize/quantizer.hpp"
#include "stats/error_metrics.hpp"
#include "util/bytes.hpp"
#include "util/timer.hpp"
#include "wavelet/transform.hpp"

namespace wck {

/// How the formatted payload is entropy-coded.
enum class EntropyMode : std::uint8_t {
  kNone = 0,         ///< formatted payload only (ablation baseline)
  kDeflate = 1,      ///< in-memory zlib-container deflate (the paper's
                     ///< Sec. IV-D suggested improvement)
  kTempFileGzip = 2, ///< write a temp file, gzip it through the
                     ///< filesystem — the paper's actual implementation,
                     ///< reproducing its "temporal file write" overhead
  kHuffmanOnly = 3,  ///< order-0 Huffman, no LZ77: several-fold faster
                     ///< than deflate at a small ratio cost (the paper's
                     ///< "other compression methods" future work)
};

struct CompressionParams {
  QuantizerConfig quantizer{};
  int wavelet_levels = 1;  ///< the paper uses a single level per axis
  /// Transform family; the paper uses Haar, CDF 5/3 / 9/7 are the
  /// JPEG 2000 transforms its Sec. II-C motivation points to.
  WaveletKind wavelet = WaveletKind::kHaar;
  EntropyMode entropy = EntropyMode::kDeflate;
  int deflate_level = 6;
  /// Entropy-stage parallelism. 0 (default) defers to the WCK_THREADS
  /// environment variable — unset means the legacy single-stream
  /// container, so existing streams, benches and tests are unaffected.
  /// >= 1 selects the sharded WCKP container with that many workers
  /// (1 = sharded but compressed inline); < 0 forces the legacy serial
  /// container regardless of environment. The sharded bytes depend only
  /// on (payload, deflate_block_size), never on the worker count.
  int threads = 0;
  /// Uncompressed bytes per shard when the sharded container is used.
  std::size_t deflate_block_size = kDefaultDeflateBlockSize;
  /// Directory for kTempFileGzip scratch files (default: system temp).
  std::filesystem::path temp_dir{};
};

/// Result of compressing one array.
struct CompressedArray {
  Bytes data;                      ///< self-describing stream
  std::size_t original_bytes = 0;
  std::size_t payload_bytes = 0;   ///< formatted size before entropy stage
  std::size_t high_count = 0;      ///< high-band elements
  std::size_t quantized_count = 0; ///< of which quantized to indexes
  StageTimes times;                ///< "wavelet", "quantize_encode",
                                   ///< "temp_file_write", "gzip", "other"

  /// Eq. 5 (percent; lower is better).
  [[nodiscard]] double compression_rate_percent() const noexcept {
    return original_bytes == 0
               ? 0.0
               : 100.0 * static_cast<double>(data.size()) / static_cast<double>(original_bytes);
  }
};

/// Observation hook into one compress() invocation: fired after the
/// wavelet transform and quantization analysis, before entropy coding.
/// Spans/references are only valid for the duration of the call. The
/// quality analyzer (src/quality) implements this; core deliberately
/// only knows the abstract interface so the dependency points outward.
class CompressionObserver {
 public:
  virtual ~CompressionObserver() = default;

  /// `high` holds the high-band coefficients in the canonical
  /// for_each_high_band order; `scheme` is the quantization scheme the
  /// payload was built with.
  virtual void on_compress(const NdArray<double>& original, const WaveletPlan& plan,
                           std::span<const double> high,
                           const QuantizationScheme& scheme) = 0;
};

/// Parameters recovered from a self-describing compressed stream
/// without reconstructing the array (header + payload metadata only).
struct StreamInfo {
  Shape shape;
  int levels = 0;
  WaveletKind wavelet = WaveletKind::kHaar;
  QuantizerKind quantizer = QuantizerKind::kSpike;
  std::uint8_t entropy_tag = 0;      ///< kNone/kDeflate/kTempFileGzip/kHuffmanOnly
                                     ///< order; 4 = sharded parallel deflate
  std::size_t averages_count = 0;    ///< quantization table size (== effective n)
  std::size_t high_count = 0;        ///< high-band elements (bitmap size)
  std::size_t quantized_count = 0;   ///< of which stored as 1-byte indexes
  std::size_t exact_count = 0;       ///< stored as raw doubles (outside spike)
  std::size_t payload_bytes = 0;     ///< formatted size after entropy decode
};

/// The lossy checkpoint compressor (thread-safe: compress/decompress are
/// const and reentrant; attach_observer is not — configure before
/// sharing across threads, and the observer itself must be thread-safe
/// if compress runs concurrently).
class WaveletCompressor {
 public:
  explicit WaveletCompressor(CompressionParams params = {});

  [[nodiscard]] const CompressionParams& params() const noexcept { return params_; }

  /// Attaches (or detaches, with nullptr) a per-compress observer.
  void attach_observer(CompressionObserver* observer) noexcept { observer_ = observer; }

  /// Compresses `input` (any rank 1..4). Throws InvalidArgumentError on
  /// empty input.
  [[nodiscard]] CompressedArray compress(const NdArray<double>& input) const;

  /// Decompresses a stream produced by compress() (any parameter set —
  /// the stream is self-describing).
  [[nodiscard]] static NdArray<double> decompress(std::span<const std::byte> data);

  /// Reads the stream's parameters and payload composition without
  /// rebuilding the array (the `wckpt analyze`/`info` path). Throws
  /// FormatError on a malformed stream.
  [[nodiscard]] static StreamInfo inspect(std::span<const std::byte> data);

  /// Convenience: compress, decompress, and report Eq. 6 error stats.
  struct RoundTrip {
    CompressedArray compressed;
    NdArray<double> reconstructed;
    ErrorStats error;
  };
  [[nodiscard]] RoundTrip round_trip(const NdArray<double>& input) const;

 private:
  CompressionParams params_;
  CompressionObserver* observer_ = nullptr;
};

/// Extension the paper lists as future work (Sec. IV-C): instead of the
/// user hand-tuning the division number `n`, pick the smallest power-of-
/// two n whose measured mean relative error meets `max_mean_rel_error`
/// (a fraction, e.g. 0.001 = 0.1 %).
struct ErrorBoundResult {
  CompressedArray compressed;
  ErrorStats error;
  int chosen_divisions = 0;
  bool met_bound = false;
};
[[nodiscard]] ErrorBoundResult compress_with_error_bound(const NdArray<double>& input,
                                                         double max_mean_rel_error,
                                                         CompressionParams base = {});

}  // namespace wck
