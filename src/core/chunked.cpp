#include "core/chunked.hpp"

#include <cstring>

#include "util/error.hpp"

namespace wck {
namespace {

constexpr std::uint32_t kMagic = 0x484B4357;  // "WCKH" little-endian
constexpr std::uint8_t kVersion = 1;

}  // namespace

CompressedArray chunked_compress(const NdArray<double>& input, const ChunkedParams& params,
                                 ThreadPool* pool) {
  if (input.size() == 0) throw InvalidArgumentError("cannot compress an empty array");

  std::size_t chunks = params.chunks;
  if (chunks == 0) chunks = pool != nullptr ? pool->thread_count() : 1;
  chunks = std::max<std::size_t>(1, std::min(chunks, input.extent(0)));

  // Axis-0 slab boundaries (row-major => each slab is contiguous).
  const std::size_t rows = input.extent(0);
  std::vector<std::size_t> begin_row(chunks + 1, 0);
  for (std::size_t c = 0; c <= chunks; ++c) {
    begin_row[c] = rows * c / chunks;
  }
  const std::size_t row_elems = input.size() / rows;

  CompressionParams base = params.base;
  if (params.threads != 0) base.threads = params.threads;
  const WaveletCompressor compressor(base);
  std::vector<CompressedArray> parts(chunks);
  auto compress_chunk = [&](std::size_t c) {
    const std::size_t r0 = begin_row[c];
    const std::size_t r1 = begin_row[c + 1];
    Shape slab_shape = input.shape();
    slab_shape[0] = r1 - r0;
    std::vector<double> slab((r1 - r0) * row_elems);
    std::memcpy(slab.data(), input.data() + r0 * row_elems, slab.size() * sizeof(double));
    parts[c] = compressor.compress(NdArray<double>(slab_shape, std::move(slab)));
  };
  if (pool != nullptr) {
    pool->parallel_for(0, chunks, compress_chunk);
  } else {
    for (std::size_t c = 0; c < chunks; ++c) compress_chunk(c);
  }

  CompressedArray out;
  out.original_bytes = input.size_bytes();
  ByteWriter w;
  w.u32(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(input.rank()));
  for (std::size_t a = 0; a < input.rank(); ++a) w.varint(input.extent(a));
  w.varint(chunks);
  for (const auto& part : parts) w.varint(part.data.size());
  for (auto& part : parts) {
    w.raw(part.data.data(), part.data.size());
    out.payload_bytes += part.payload_bytes;
    out.high_count += part.high_count;
    out.quantized_count += part.quantized_count;
    out.times.merge(part.times);  // summed CPU time across chunks
  }
  out.data = w.take();
  return out;
}

NdArray<double> chunked_decompress(std::span<const std::byte> data, ThreadPool* pool) {
  ByteReader r(data);
  if (r.u32() != kMagic) throw FormatError("chunked stream: bad magic");
  if (r.u8() != kVersion) throw FormatError("chunked stream: unsupported version");
  const std::uint8_t rank = r.u8();
  if (rank < 1 || rank > kMaxRank) throw FormatError("chunked stream: invalid rank");
  Shape shape = Shape::of_rank(rank);
  for (std::size_t a = 0; a < rank; ++a) {
    shape[a] = r.varint();
    if (shape[a] == 0) throw FormatError("chunked stream: zero extent");
  }
  const std::uint64_t chunks = r.varint();
  if (chunks == 0 || chunks > shape[0]) throw FormatError("chunked stream: bad chunk count");
  std::vector<std::uint64_t> sizes(chunks);
  for (auto& s : sizes) s = r.varint();
  std::vector<std::span<const std::byte>> bodies(chunks);
  for (std::size_t c = 0; c < chunks; ++c) bodies[c] = r.raw(sizes[c]);
  if (!r.exhausted()) throw FormatError("chunked stream: trailing bytes");

  NdArray<double> out(shape);
  const std::size_t row_elems = out.size() / shape[0];
  std::vector<std::size_t> begin_row(chunks + 1, 0);
  for (std::size_t c = 0; c <= chunks; ++c) begin_row[c] = shape[0] * c / chunks;

  auto decode_chunk = [&](std::size_t c) {
    const NdArray<double> slab = WaveletCompressor::decompress(bodies[c]);
    Shape expect = shape;
    expect[0] = begin_row[c + 1] - begin_row[c];
    if (slab.shape() != expect) {
      throw FormatError("chunked stream: slab shape mismatch in chunk " + std::to_string(c));
    }
    std::memcpy(out.data() + begin_row[c] * row_elems, slab.data(), slab.size_bytes());
  };
  if (pool != nullptr) {
    pool->parallel_for(0, chunks, decode_chunk);
  } else {
    for (std::size_t c = 0; c < chunks; ++c) decode_chunk(c);
  }
  return out;
}

}  // namespace wck
