#include "core/synthetic.hpp"

#include <array>
#include <cmath>
#include <numbers>

#include "util/rng.hpp"

namespace wck {
namespace {

struct Mode {
  std::array<double, kMaxRank> freq;
  double amplitude;
  double phase;
};

}  // namespace

NdArray<double> make_smooth_field(const Shape& shape, std::uint64_t seed, double roughness) {
  Xoshiro256 rng(seed);
  const std::size_t r = shape.rank();

  // A handful of long-wavelength modes dominates; amplitude decays with
  // mode index, giving a realistic red spectrum.
  constexpr int kModes = 8;
  std::array<Mode, kModes> modes;
  for (int m = 0; m < kModes; ++m) {
    Mode& mode = modes[static_cast<std::size_t>(m)];
    for (std::size_t a = 0; a < r; ++a) {
      // Wavenumbers 1..4 cycles across the axis.
      mode.freq[a] = 2.0 * std::numbers::pi * (1.0 + rng.uniform() * 3.0) /
                     static_cast<double>(shape[a]);
    }
    mode.amplitude = 1.0 / (1.0 + m);
    mode.phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
  }
  std::array<double, kMaxRank> gradient{};
  for (std::size_t a = 0; a < r; ++a) {
    gradient[a] = rng.uniform(-0.5, 0.5) / static_cast<double>(shape[a]);
  }

  NdArray<double> out(shape);
  std::array<std::size_t, kMaxRank> idx{};
  for (std::size_t flat = 0; flat < out.size(); ++flat) {
    double v = 0.0;
    for (const Mode& mode : modes) {
      double arg = mode.phase;
      for (std::size_t a = 0; a < r; ++a) {
        arg += mode.freq[a] * static_cast<double>(idx[a]);
      }
      v += mode.amplitude * std::sin(arg);
    }
    for (std::size_t a = 0; a < r; ++a) {
      v += gradient[a] * static_cast<double>(idx[a]);
    }
    if (roughness > 0.0) v += roughness * rng.normal();
    out[flat] = v;
    // Row-major odometer.
    for (std::size_t a = r; a-- > 0;) {
      if (++idx[a] < shape[a]) break;
      idx[a] = 0;
    }
  }
  return out;
}

NdArray<double> make_temperature_field(const Shape& shape, std::uint64_t seed) {
  NdArray<double> base = make_smooth_field(shape, seed, /*roughness=*/0.002);
  const std::size_t r = shape.rank();
  const std::size_t vertical = r - 1;
  const double lapse = 60.0 / static_cast<double>(shape[vertical]);  // ~K per level

  std::array<std::size_t, kMaxRank> idx{};
  for (std::size_t flat = 0; flat < base.size(); ++flat) {
    // 288 K surface temperature, decaying with level, +-3 K weather.
    base[flat] = 288.0 - lapse * static_cast<double>(idx[vertical]) + 3.0 * base[flat];
    for (std::size_t a = r; a-- > 0;) {
      if (++idx[a] < shape[a]) break;
      idx[a] = 0;
    }
  }
  return base;
}

NdArray<double> make_random_field(const Shape& shape, std::uint64_t seed, double lo, double hi) {
  Xoshiro256 rng(seed);
  NdArray<double> out(shape);
  for (auto& v : out.values()) v = rng.uniform(lo, hi);
  return out;
}

}  // namespace wck
