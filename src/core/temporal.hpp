// Temporal (inter-checkpoint) lossy compression.
//
// Consecutive checkpoints of a simulation are highly correlated: the
// state advances only a little between them. The paper's pipeline
// compresses every checkpoint independently; this extension (in the
// spirit of its "improvement of the compression algorithm" future work)
// compresses the *change* since the previous checkpoint instead:
//
//   delta_t = state_t - reconstruction_{t-1}
//
// run through the same wavelet + quantization + deflate pipeline. The
// delta is near zero everywhere, so its high bands quantize into far
// fewer bits than the state's. Like incremental checkpointing, restart
// needs the chain from the last key (full) checkpoint, so a key frame is
// emitted every `key_every` checkpoints; unlike incremental
// checkpointing it still compresses when *everything* changed a little —
// exactly the CFD case where dirty-block schemes fail.
//
// The compressor tracks its own reconstruction (not the true state), so
// quantization errors do NOT accumulate across deltas: the error of
// every reconstructed checkpoint is bounded by a single quantization.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/compressor.hpp"

namespace wck {

struct TemporalParams {
  CompressionParams base{};
  /// Emit a key (self-contained) checkpoint every N checkpoints.
  std::size_t key_every = 8;
};

/// One emitted temporal checkpoint.
struct TemporalCheckpoint {
  Bytes data;           ///< self-describing (key flag embedded)
  bool is_key = false;
  std::uint64_t sequence = 0;  ///< position in the compressor's stream
  std::size_t original_bytes = 0;
};

/// Stateful compressor for a stream of checkpoints of one array.
class TemporalCompressor {
 public:
  explicit TemporalCompressor(TemporalParams params = {});

  /// Compresses the next checkpoint in the stream.
  [[nodiscard]] TemporalCheckpoint add(const NdArray<double>& state);

  /// The compressor-side reconstruction of the last added checkpoint
  /// (what a restart from it would see).
  [[nodiscard]] const NdArray<double>& last_reconstruction() const;

 private:
  TemporalParams params_;
  WaveletCompressor key_compressor_;
  WaveletCompressor delta_compressor_;
  std::optional<NdArray<double>> recon_;
  std::uint64_t sequence_ = 0;
};

/// Rebuilds the checkpoint at the end of `chain`, which must start with
/// a key checkpoint and contain every delta after it, in order.
[[nodiscard]] NdArray<double> temporal_restore(std::span<const TemporalCheckpoint> chain);

}  // namespace wck
