// Synthetic workload generators.
//
// The paper compresses smooth physical-quantity meshes (pressure,
// temperature, wind velocity from NICAM). These generators produce
// deterministic fields of the same character for tests and benches that
// do not want to run the full MiniClimate model: smooth multi-scale
// fields (wavelet-friendly), plus rough/random fields as adversarial
// inputs.
#pragma once

#include <cstdint>

#include "ndarray/ndarray.hpp"

namespace wck {

/// A smooth "physical quantity" field: superposed long-wavelength modes
/// plus a weak gradient, with amplitudes/phases drawn from `seed`.
/// Neighbouring values differ little, the property Sec. III-A exploits.
[[nodiscard]] NdArray<double> make_smooth_field(const Shape& shape, std::uint64_t seed,
                                                double roughness = 0.0);

/// A temperature-like field: smooth base plus a vertical lapse-rate
/// trend along the last axis (mimics NICAM's 3D state arrays).
[[nodiscard]] NdArray<double> make_temperature_field(const Shape& shape, std::uint64_t seed);

/// Uniform white noise in [lo, hi): the worst case for the transform.
[[nodiscard]] NdArray<double> make_random_field(const Shape& shape, std::uint64_t seed,
                                                double lo = -1.0, double hi = 1.0);

}  // namespace wck
