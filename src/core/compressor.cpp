#include "core/compressor.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <string>

#include "deflate/deflate.hpp"
#include "deflate/huffman_only.hpp"
#include "deflate/parallel.hpp"
#include "simd/dispatch.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "wavelet/haar.hpp"

namespace wck {
namespace {

constexpr std::uint8_t kTagNone = 0;
constexpr std::uint8_t kTagZlib = 1;
constexpr std::uint8_t kTagGzip = 2;
constexpr std::uint8_t kTagHuffman = 3;
constexpr std::uint8_t kTagSharded = 4;  ///< WCKP block-parallel deflate container

/// Writes `data` to `path`; throws IoError on failure.
void write_file(const std::filesystem::path& path, std::span<const std::byte> data) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw IoError("cannot open " + path.string() + " for writing");
  f.write(reinterpret_cast<const char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  f.flush();
  if (!f) throw IoError("write failed for " + path.string());
}

/// Reads a whole file; throws IoError on failure.
Bytes read_file(const std::filesystem::path& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) throw IoError("cannot open " + path.string() + " for reading");
  const std::streamsize size = f.tellg();
  f.seekg(0);
  Bytes data(static_cast<std::size_t>(size));
  f.read(reinterpret_cast<char*>(data.data()), size);
  if (!f) throw IoError("read failed for " + path.string());
  return data;
}

std::filesystem::path unique_temp_path(const std::filesystem::path& dir,
                                       const std::string& suffix) {
  static std::atomic<std::uint64_t> counter{0};
  const auto base = dir.empty() ? std::filesystem::temp_directory_path() : dir;
  return base / ("wck_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter.fetch_add(1)) + suffix);
}

}  // namespace

WaveletCompressor::WaveletCompressor(CompressionParams params) : params_(std::move(params)) {
  if (params_.wavelet_levels < 1) {
    throw InvalidArgumentError("wavelet_levels must be >= 1");
  }
  if (params_.quantizer.divisions < 1 || params_.quantizer.divisions > 256) {
    throw InvalidArgumentError("quantizer divisions must be 1..256");
  }
}

CompressedArray WaveletCompressor::compress(const NdArray<double>& input) const {
  if (input.size() == 0) throw InvalidArgumentError("cannot compress an empty array");
  WCK_TRACE_SPAN("compress");
  WCK_COUNTER_ADD("compress.calls", 1);
  WCK_COUNTER_ADD("compress.bytes_in", input.size_bytes());

  CompressedArray out;
  out.original_bytes = input.size_bytes();

  // --- "other": working copy of the input (the transform is in-place).
  NdArray<double> work;
  {
    ScopedStage stage(out.times, "other");
    work = input;
  }

  // --- Stage 1: wavelet transformation.
  const WaveletPlan plan = WaveletPlan::create(input.shape(), params_.wavelet_levels);
  {
    WCK_TRACE_SPAN("wavelet");
    ScopedStage stage(out.times, "wavelet");
    wavelet_forward(work.view(), params_.wavelet, params_.wavelet_levels);
  }

  // --- Stages 2-4: quantization, encoding, formatting. The legacy
  // "quantize_encode" StageTimes bucket (Fig. 9's granularity) is kept;
  // telemetry additionally resolves the paper's separate quantize /
  // encode stages.
  Bytes payload_bytes;
  // Hoisted past the stage scope so an attached observer can inspect
  // them without perturbing the timed stages.
  std::vector<double> high;
  QuantizationScheme scheme;
  {
    ScopedStage stage(out.times, "quantize_encode");

    LossyPayload p;
    {
      WCK_TRACE_SPAN("quantize");
      const WallTimer quantize_timer;
      const simd::KernelTable& kern = simd::kernels();
      high.reserve(plan.high_count());
      for_each_high_band(work.view(), plan.final_low_extents(),
                         [&high](double& v) { high.push_back(v); });
      // Range-scan the contiguous copy with the vector kernel so
      // analyze() skips its own min/max pass; the kernel replicates the
      // analyzer's sequential fold, so the scheme is bit-identical.
      ValueRange range;
      if (!high.empty()) {
        kern.range_min_max(high.data(), high.size(), &range.min, &range.max);
      }

      scheme = QuantizationScheme::analyze(high, params_.quantizer,
                                           high.empty() ? nullptr : &range);

      p.shape = input.shape();
      p.levels = params_.wavelet_levels;
      p.wavelet = params_.wavelet;
      p.quantizer = params_.quantizer.kind;
      p.averages = scheme.averages();
      p.low_band.reserve(plan.low_count());
      for_each_low_band(work.view(), plan.final_low_extents(),
                        [&p](double& v) { p.low_band.push_back(v); });
      std::vector<std::int32_t> cls(high.size());
      scheme.classify_batch(high, cls);
      p.quantized = Bitmap::from_classification(cls);
      p.indices.reserve(p.quantized.count());
      for (std::size_t i = 0; i < high.size(); ++i) {
        if (cls[i] >= 0) {
          p.indices.push_back(static_cast<std::uint8_t>(cls[i]));
        } else {
          p.exact_values.push_back(high[i]);
        }
      }
      WCK_HISTOGRAM_RECORD("stage.quantize.seconds", quantize_timer.seconds());
    }
    out.high_count = high.size();
    out.quantized_count = p.indices.size();

    {
      WCK_TRACE_SPAN("encode");
      const WallTimer encode_timer;
      payload_bytes = encode_payload(p);
      WCK_HISTOGRAM_RECORD("stage.encode.seconds", encode_timer.seconds());
    }
  }
  out.payload_bytes = payload_bytes.size();

  // Observer sees the coefficients exactly as the payload encodes them,
  // outside every timed stage.
  if (observer_ != nullptr) observer_->on_compress(input, plan, high, scheme);

  // --- Stage 5: entropy coding of the formatted stream. The legacy
  // "gzip" StageTimes slot is kept for Fig. 9; telemetry records the
  // same interval as the paper's "deflate" stage.
  switch (params_.entropy) {
    case EntropyMode::kNone: {
      out.data.push_back(static_cast<std::byte>(kTagNone));
      out.data.insert(out.data.end(), payload_bytes.begin(), payload_bytes.end());
      break;
    }
    case EntropyMode::kDeflate: {
      const auto sharding = resolve_deflate_sharding(params_.threads);
      Bytes body;
      {
        WCK_TRACE_SPAN("deflate");
        ScopedStage stage(out.times, "gzip");
        const WallTimer deflate_timer;
        if (sharding) {
          body = sharded_deflate_compress(
              payload_bytes,
              {params_.deflate_level, params_.deflate_block_size, *sharding});
        } else {
          body = zlib_compress(payload_bytes, DeflateOptions{params_.deflate_level});
        }
        WCK_HISTOGRAM_RECORD("stage.deflate.seconds", deflate_timer.seconds());
      }
      out.data.push_back(static_cast<std::byte>(sharding ? kTagSharded : kTagZlib));
      out.data.insert(out.data.end(), body.begin(), body.end());
      break;
    }
    case EntropyMode::kHuffmanOnly: {
      Bytes body;
      {
        WCK_TRACE_SPAN("deflate");
        ScopedStage stage(out.times, "gzip");  // reported in the same slot
        const WallTimer deflate_timer;
        body = huffman_only_compress(payload_bytes);
        WCK_HISTOGRAM_RECORD("stage.deflate.seconds", deflate_timer.seconds());
      }
      out.data.push_back(static_cast<std::byte>(kTagHuffman));
      out.data.insert(out.data.end(), body.begin(), body.end());
      break;
    }
    case EntropyMode::kTempFileGzip: {
      // Reproduces the paper's implementation: the formatted checkpoint
      // is written to a temporary file, then gzip is applied through the
      // file system (Sec. IV-D notes this dominates compression time).
      const auto tmp = unique_temp_path(params_.temp_dir, ".wck");
      const auto tmp_gz = unique_temp_path(params_.temp_dir, ".wck.gz");
      {
        WCK_TRACE_SPAN("temp_file_write");
        ScopedStage stage(out.times, "temp_file_write");
        write_file(tmp, payload_bytes);
      }
      // With sharding enabled the temp-file dance is kept (the write /
      // read-back overhead is the point of this mode) but the on-disk
      // compressed body is the block-parallel WCKP container, so the
      // dominant "gzip" stage scales with threads.
      const auto sharding = resolve_deflate_sharding(params_.threads);
      Bytes body;
      {
        WCK_TRACE_SPAN("deflate");
        ScopedStage stage(out.times, "gzip");
        const WallTimer deflate_timer;
        const Bytes on_disk = read_file(tmp);
        if (sharding) {
          body = sharded_deflate_compress(
              on_disk, {params_.deflate_level, params_.deflate_block_size, *sharding});
        } else {
          body = gzip_compress(on_disk, DeflateOptions{params_.deflate_level});
        }
        write_file(tmp_gz, body);
        body = read_file(tmp_gz);
        WCK_HISTOGRAM_RECORD("stage.deflate.seconds", deflate_timer.seconds());
      }
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      std::filesystem::remove(tmp_gz, ec);
      out.data.push_back(static_cast<std::byte>(sharding ? kTagSharded : kTagGzip));
      out.data.insert(out.data.end(), body.begin(), body.end());
      break;
    }
  }
  WCK_COUNTER_ADD("compress.bytes_out", out.data.size());
  WCK_COUNTER_ADD("compress.payload_bytes", out.payload_bytes);
  return out;
}

NdArray<double> WaveletCompressor::decompress(std::span<const std::byte> data) {
  if (data.empty()) throw FormatError("empty compressed stream");
  WCK_TRACE_SPAN("decompress");
  WCK_COUNTER_ADD("decompress.calls", 1);
  WCK_COUNTER_ADD("decompress.bytes_in", data.size());
  const auto tag = static_cast<std::uint8_t>(data[0]);
  const auto body = data.subspan(1);

  Bytes payload_storage;
  std::span<const std::byte> payload;
  switch (tag) {
    case kTagNone:
      payload = body;
      break;
    case kTagZlib:
      payload_storage = zlib_decompress(body);
      payload = payload_storage;
      break;
    case kTagGzip:
      payload_storage = gzip_decompress(body);
      payload = payload_storage;
      break;
    case kTagHuffman:
      payload_storage = huffman_only_decompress(body);
      payload = payload_storage;
      break;
    case kTagSharded:
      payload_storage = sharded_deflate_decompress(body);
      payload = payload_storage;
      break;
    default:
      throw FormatError("unknown entropy tag " + std::to_string(tag));
  }

  const LossyPayload p = decode_payload(payload);
  const WaveletPlan plan = WaveletPlan::create(p.shape, p.levels);
  if (p.low_band.size() != plan.low_count()) {
    throw FormatError("payload low band size does not match transform plan");
  }
  if (p.quantized.size() != plan.high_count()) {
    throw FormatError("payload bitmap size does not match transform plan");
  }

  NdArray<double> work(p.shape);
  {
    std::size_t li = 0;
    for_each_low_band(work.view(), plan.final_low_extents(),
                      [&](double& v) { v = p.low_band[li++]; });
  }
  {
    // Materialize the high bands contiguously through the select kernel
    // (decode_payload validated popcount == #indices, every index <
    // #averages, and #exact == size - popcount), then scatter along the
    // serialization walk.
    const std::size_t n = p.quantized.size();
    std::vector<double> high(n);
    if (n > 0) {
      simd::kernels().bitmap_select(p.quantized.words().data(), n, p.averages.data(),
                                    p.indices.data(), p.exact_values.data(), high.data());
    }
    std::size_t hi = 0;
    for_each_high_band(work.view(), plan.final_low_extents(),
                       [&high, &hi](double& v) { v = high[hi++]; });
  }
  wavelet_inverse(work.view(), p.wavelet, p.levels);
  return work;
}

StreamInfo WaveletCompressor::inspect(std::span<const std::byte> data) {
  if (data.empty()) throw FormatError("empty compressed stream");
  const auto tag = static_cast<std::uint8_t>(data[0]);
  const auto body = data.subspan(1);

  Bytes payload_storage;
  std::span<const std::byte> payload;
  switch (tag) {
    case kTagNone:
      payload = body;
      break;
    case kTagZlib:
      payload_storage = zlib_decompress(body);
      payload = payload_storage;
      break;
    case kTagGzip:
      payload_storage = gzip_decompress(body);
      payload = payload_storage;
      break;
    case kTagHuffman:
      payload_storage = huffman_only_decompress(body);
      payload = payload_storage;
      break;
    case kTagSharded:
      payload_storage = sharded_deflate_decompress(body);
      payload = payload_storage;
      break;
    default:
      throw FormatError("unknown entropy tag " + std::to_string(tag));
  }

  const LossyPayload p = decode_payload(payload);
  StreamInfo info;
  info.shape = p.shape;
  info.levels = p.levels;
  info.wavelet = p.wavelet;
  info.quantizer = p.quantizer;
  info.entropy_tag = tag;
  info.averages_count = p.averages.size();
  info.high_count = p.quantized.size();
  info.quantized_count = p.indices.size();
  info.exact_count = p.exact_values.size();
  info.payload_bytes = payload.size();
  return info;
}

WaveletCompressor::RoundTrip WaveletCompressor::round_trip(const NdArray<double>& input) const {
  RoundTrip rt{compress(input), NdArray<double>{}, ErrorStats{}};
  rt.reconstructed = decompress(rt.compressed.data);
  rt.error = relative_error(input.values(), rt.reconstructed.values());
  return rt;
}

ErrorBoundResult compress_with_error_bound(const NdArray<double>& input,
                                           double max_mean_rel_error,
                                           CompressionParams base) {
  if (max_mean_rel_error <= 0.0) {
    throw InvalidArgumentError("error bound must be positive");
  }
  ErrorBoundResult best;
  bool have_best = false;
  for (int n = 1; n <= 256; n *= 2) {
    CompressionParams p = base;
    p.quantizer.divisions = n;
    const WaveletCompressor compressor(p);
    auto rt = compressor.round_trip(input);
    if (rt.error.mean_rel <= max_mean_rel_error) {
      best.compressed = std::move(rt.compressed);
      best.error = rt.error;
      best.chosen_divisions = n;
      best.met_bound = true;
      return best;
    }
    // Keep the lowest-error attempt as the best-effort fallback (the
    // error is not strictly monotone in n on all data).
    if (!have_best || rt.error.mean_rel < best.error.mean_rel) {
      best.compressed = std::move(rt.compressed);
      best.error = rt.error;
      best.chosen_divisions = n;
      have_best = true;
    }
  }
  best.met_bound = false;
  return best;
}

}  // namespace wck
