// Chunked (parallel) compression of one large array.
//
// The paper requires compression time to be "not only fast but also
// scalable to checkpoint size" (Sec. II-A). Chunking splits the array
// along axis 0 into contiguous slabs compressed independently — on a
// thread pool this parallelizes the pipeline inside a single process
// (complementing the across-process parallelism of Sec. IV-D), bounds
// working memory, and keeps streams seekable per chunk.
//
// Trade-off: each slab carries its own quantization tables and loses
// cross-slab wavelet correlation, so the rate is slightly worse than
// whole-array compression (measured by bench/ablation_chunks).
#pragma once

#include <cstdint>

#include "core/compressor.hpp"
#include "parallel/thread_pool.hpp"

namespace wck {

struct ChunkedParams {
  CompressionParams base{};
  /// Number of axis-0 slabs; 0 = one per pool thread (min 1).
  std::size_t chunks = 0;
  /// When nonzero, overrides base.threads for every slab's entropy stage
  /// (the sharded deflate engine; see CompressionParams::threads). Slab
  /// pipelines run on `pool` while their deflate shards fan out over the
  /// engine's own shared pool, so the two levels compose without
  /// deadlock. 0 keeps base.threads as-is.
  int threads = 0;
};

/// Compresses `input` as independent slabs, in parallel on `pool` (pass
/// nullptr for sequential). Output is self-describing and deterministic
/// regardless of thread count.
[[nodiscard]] CompressedArray chunked_compress(const NdArray<double>& input,
                                               const ChunkedParams& params,
                                               ThreadPool* pool = nullptr);

/// Decompresses a chunked stream (also accepts pool for parallel decode).
[[nodiscard]] NdArray<double> chunked_decompress(std::span<const std::byte> data,
                                                 ThreadPool* pool = nullptr);

}  // namespace wck
