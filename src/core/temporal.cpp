#include "core/temporal.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace wck {
namespace {

constexpr std::uint8_t kKindKey = 0xD1;
constexpr std::uint8_t kKindDelta = 0xD2;

}  // namespace

TemporalCompressor::TemporalCompressor(TemporalParams params)
    : params_(params), key_compressor_(params.base), delta_compressor_(params.base) {
  if (params.key_every == 0) {
    throw InvalidArgumentError("temporal: key_every must be >= 1");
  }
}

TemporalCheckpoint TemporalCompressor::add(const NdArray<double>& state) {
  TemporalCheckpoint out;
  out.sequence = sequence_;
  out.original_bytes = state.size_bytes();

  const bool key = !recon_.has_value() || sequence_ % params_.key_every == 0 ||
                   recon_->shape() != state.shape();
  if (key) {
    CompressedArray comp = key_compressor_.compress(state);
    recon_ = WaveletCompressor::decompress(comp.data);
    out.is_key = true;
    out.data.reserve(comp.data.size() + 1);
    out.data.push_back(static_cast<std::byte>(kKindKey));
    out.data.insert(out.data.end(), comp.data.begin(), comp.data.end());
  } else {
    // Delta against our own reconstruction: errors never compound.
    NdArray<double> delta(state.shape());
    double state_lo = state[0];
    double state_hi = state[0];
    double delta_lo = 0.0;
    double delta_hi = 0.0;
    for (std::size_t i = 0; i < state.size(); ++i) {
      delta[i] = state[i] - (*recon_)[i];
      state_lo = std::min(state_lo, state[i]);
      state_hi = std::max(state_hi, state[i]);
      delta_lo = std::min(delta_lo, delta[i]);
      delta_hi = std::max(delta_hi, delta[i]);
    }
    // Hold the *absolute* quantization step at the key checkpoint's
    // level: a delta spanning 1/k of the state's range needs only n/k
    // divisions for the same absolute error — that is where the size
    // win over independent compression comes from.
    const double state_range = state_hi - state_lo;
    const double delta_range = delta_hi - delta_lo;
    CompressionParams delta_params = params_.base;
    if (state_range > 0.0 && delta_range > 0.0) {
      const double scaled = static_cast<double>(params_.base.quantizer.divisions) *
                            delta_range / state_range;
      delta_params.quantizer.divisions =
          std::clamp(static_cast<int>(std::ceil(scaled)), 1, 256);
    }
    // Deltas use the *simple* quantizer: with the absolute step pinned,
    // every value's error is bounded by one cell width, so the spike
    // detector's exact-value escape hatch (the size floor of the
    // proposed method) buys nothing here.
    delta_params.quantizer.kind = QuantizerKind::kSimple;
    const WaveletCompressor scaled_compressor(delta_params);
    CompressedArray comp = scaled_compressor.compress(delta);
    const NdArray<double> delta_rec = WaveletCompressor::decompress(comp.data);
    for (std::size_t i = 0; i < state.size(); ++i) (*recon_)[i] += delta_rec[i];
    out.is_key = false;
    out.data.reserve(comp.data.size() + 1);
    out.data.push_back(static_cast<std::byte>(kKindDelta));
    out.data.insert(out.data.end(), comp.data.begin(), comp.data.end());
  }
  ++sequence_;
  return out;
}

const NdArray<double>& TemporalCompressor::last_reconstruction() const {
  if (!recon_.has_value()) {
    throw InvalidArgumentError("temporal: no checkpoint added yet");
  }
  return *recon_;
}

NdArray<double> temporal_restore(std::span<const TemporalCheckpoint> chain) {
  if (chain.empty()) throw InvalidArgumentError("temporal: empty restore chain");

  NdArray<double> recon;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const Bytes& data = chain[i].data;
    if (data.empty()) throw FormatError("temporal: empty record");
    const auto kind = static_cast<std::uint8_t>(data[0]);
    const auto body = std::span(data).subspan(1);
    if (kind == kKindKey) {
      if (i != 0) throw FormatError("temporal: key checkpoint after start of chain");
      recon = WaveletCompressor::decompress(body);
    } else if (kind == kKindDelta) {
      if (i == 0) throw FormatError("temporal: chain must start with a key checkpoint");
      const NdArray<double> delta = WaveletCompressor::decompress(body);
      if (delta.shape() != recon.shape()) {
        throw FormatError("temporal: delta shape mismatch");
      }
      for (std::size_t j = 0; j < recon.size(); ++j) recon[j] += delta[j];
    } else {
      throw FormatError("temporal: unknown record kind");
    }
  }
  return recon;
}

}  // namespace wck
