#include "ckpt/async_writer.hpp"

#include "io/io_backend.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace wck {

AsyncCheckpointWriter::AsyncCheckpointWriter(const Codec& codec, AsyncWriterOptions options,
                                             IoBackend* io)
    : codec_(codec), options_(options), io_(io), worker_([this] { worker_loop(); }) {}

AsyncCheckpointWriter::~AsyncCheckpointWriter() {
  {
    MutexLock lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

std::future<CheckpointInfo> AsyncCheckpointWriter::write_async(
    const std::filesystem::path& path, const CheckpointRegistry& registry,
    std::uint64_t step) {
  WCK_TRACE_SPAN("ckpt.async.snapshot");
  Job job;
  job.path = path;
  job.step = step;
  job.snapshot.reserve(registry.entries().size());
  // The blocking part: deep-copy the state at this instant.
  for (const auto& e : registry.entries()) {
    job.snapshot.emplace_back(e.name, *e.array);
  }
  auto future = job.promise.get_future();
  job.enqueued = std::chrono::steady_clock::now();
  std::size_t depth = 0;
  {
    MutexLock lk(mu_);
    if (unhealthy_) {
      // Fail fast: queueing against a persistently failing storage path
      // only buries the error deeper in the queue.
      WCK_COUNTER_ADD("ckpt.async.rejected_unhealthy", 1);
      job.promise.set_exception(std::make_exception_ptr(IoError(
          "async writer unhealthy after " + std::to_string(consecutive_failures_) +
          " consecutive write failures (path " + path.string() + " not attempted)")));
      return future;
    }
    if (options_.max_queue > 0 && queue_.size() >= options_.max_queue) {
      using Backpressure = AsyncWriterOptions::Backpressure;
      switch (options_.backpressure) {
        case Backpressure::kBlock:
          WCK_EVENT(kQueueBlock, step,
                    "queue full (" + std::to_string(queue_.size()) + ")");
          space_cv_.wait(lk, [this] {
            mu_.assert_held();
            return stopping_ || queue_.size() < options_.max_queue;
          });
          break;
        case Backpressure::kDropOldest: {
          Job victim = std::move(queue_.front());
          queue_.pop_front();
          WCK_COUNTER_ADD("ckpt.async.dropped_backpressure", 1);
          WCK_EVENT(kQueueDropOldest, victim.step, victim.path.filename().string());
          victim.promise.set_exception(std::make_exception_ptr(
              IoError("checkpoint dropped by backpressure (drop-oldest): " +
                      victim.path.string())));
          break;
        }
        case Backpressure::kRejectNewest:
          WCK_COUNTER_ADD("ckpt.async.rejected_backpressure", 1);
          WCK_EVENT(kQueueRejectNewest, step, path.filename().string());
          job.promise.set_exception(std::make_exception_ptr(
              IoError("checkpoint rejected by backpressure (queue full): " +
                      path.string())));
          return future;
      }
    }
    queue_.push_back(std::move(job));
    depth = queue_.size() + in_flight_;
  }
  WCK_COUNTER_ADD("ckpt.async.jobs_submitted", 1);
  WCK_GAUGE_SET("ckpt.async.queue_depth", static_cast<double>(depth));
  cv_.notify_one();
  return future;
}

void AsyncCheckpointWriter::drain() {
  MutexLock lk(mu_);
  idle_cv_.wait(lk, [this] {
    mu_.assert_held();
    return queue_.empty() && in_flight_ == 0;
  });
}

std::size_t AsyncCheckpointWriter::pending() const {
  MutexLock lk(mu_);
  return queue_.size() + in_flight_;
}

bool AsyncCheckpointWriter::healthy() const {
  MutexLock lk(mu_);
  return !unhealthy_;
}

std::size_t AsyncCheckpointWriter::consecutive_failures() const {
  MutexLock lk(mu_);
  return consecutive_failures_;
}

void AsyncCheckpointWriter::worker_loop() {
  for (;;) {
    Job job;
    {
      MutexLock lk(mu_);
      cv_.wait(lk, [this] {
        mu_.assert_held();
        return stopping_ || !queue_.empty();
      });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    space_cv_.notify_one();

    bool succeeded = false;
    try {
      WCK_TRACE_SPAN("ckpt.async.flush");
      // Rebuild a registry over the snapshot copies and write normally.
      CheckpointRegistry snap_registry;
      for (auto& [name, array] : job.snapshot) {
        snap_registry.add(name, &array);
      }
      CheckpointInfo info =
          io_ != nullptr
              ? write_checkpoint(job.path, snap_registry, codec_, job.step, *io_)
              : write_checkpoint(job.path, snap_registry, codec_, job.step);
      WCK_COUNTER_ADD("ckpt.async.jobs_completed", 1);
      WCK_HISTOGRAM_RECORD(
          "ckpt.async.flush_latency.seconds",
          std::chrono::duration<double>(std::chrono::steady_clock::now() - job.enqueued)
              .count());
      succeeded = true;
      job.promise.set_value(std::move(info));
    } catch (...) {
      // The worker must outlive any single failed write: the error goes
      // to this job's future and the loop continues with the next job.
      WCK_COUNTER_ADD("ckpt.async.jobs_failed", 1);
      job.promise.set_exception(std::current_exception());
    }

    std::size_t depth = 0;
    {
      MutexLock lk(mu_);
      --in_flight_;
      depth = queue_.size() + in_flight_;
      if (succeeded) {
        consecutive_failures_ = 0;
        unhealthy_ = false;
      } else {
        ++consecutive_failures_;
        if (options_.unhealthy_after > 0 &&
            consecutive_failures_ >= options_.unhealthy_after && !unhealthy_) {
          unhealthy_ = true;
          WCK_COUNTER_ADD("ckpt.async.unhealthy_transitions", 1);
          WCK_EVENT(kWriterUnhealthy, job.step,
                    std::to_string(consecutive_failures_) + " consecutive failures");
        }
      }
      WCK_GAUGE_SET("ckpt.async.healthy", unhealthy_ ? 0.0 : 1.0);
    }
    WCK_GAUGE_SET("ckpt.async.queue_depth", static_cast<double>(depth));
    idle_cv_.notify_all();
  }
}

}  // namespace wck
