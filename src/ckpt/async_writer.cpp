#include "ckpt/async_writer.hpp"

#include "telemetry/telemetry.hpp"

namespace wck {

AsyncCheckpointWriter::AsyncCheckpointWriter(const Codec& codec)
    : codec_(codec), worker_([this] { worker_loop(); }) {}

AsyncCheckpointWriter::~AsyncCheckpointWriter() {
  {
    std::lock_guard lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

std::future<CheckpointInfo> AsyncCheckpointWriter::write_async(
    const std::filesystem::path& path, const CheckpointRegistry& registry,
    std::uint64_t step) {
  WCK_TRACE_SPAN("ckpt.async.snapshot");
  Job job;
  job.path = path;
  job.step = step;
  job.snapshot.reserve(registry.entries().size());
  // The blocking part: deep-copy the state at this instant.
  for (const auto& e : registry.entries()) {
    job.snapshot.emplace_back(e.name, *e.array);
  }
  auto future = job.promise.get_future();
  job.enqueued = std::chrono::steady_clock::now();
  std::size_t depth = 0;
  {
    std::lock_guard lk(mu_);
    queue_.push_back(std::move(job));
    depth = queue_.size() + in_flight_;
  }
  WCK_COUNTER_ADD("ckpt.async.jobs_submitted", 1);
  WCK_GAUGE_SET("ckpt.async.queue_depth", static_cast<double>(depth));
  cv_.notify_one();
  return future;
}

void AsyncCheckpointWriter::drain() {
  std::unique_lock lk(mu_);
  idle_cv_.wait(lk, [this] { return queue_.empty() && in_flight_ == 0; });
}

std::size_t AsyncCheckpointWriter::pending() const {
  std::lock_guard lk(mu_);
  return queue_.size() + in_flight_;
}

void AsyncCheckpointWriter::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }

    try {
      WCK_TRACE_SPAN("ckpt.async.flush");
      // Rebuild a registry over the snapshot copies and write normally.
      CheckpointRegistry snap_registry;
      for (auto& [name, array] : job.snapshot) {
        snap_registry.add(name, &array);
      }
      CheckpointInfo info = write_checkpoint(job.path, snap_registry, codec_, job.step);
      WCK_COUNTER_ADD("ckpt.async.jobs_completed", 1);
      WCK_HISTOGRAM_RECORD(
          "ckpt.async.flush_latency.seconds",
          std::chrono::duration<double>(std::chrono::steady_clock::now() - job.enqueued)
              .count());
      job.promise.set_value(std::move(info));
    } catch (...) {
      WCK_COUNTER_ADD("ckpt.async.jobs_failed", 1);
      job.promise.set_exception(std::current_exception());
    }

    std::size_t depth = 0;
    {
      std::lock_guard lk(mu_);
      --in_flight_;
      depth = queue_.size() + in_flight_;
    }
    WCK_GAUGE_SET("ckpt.async.queue_depth", static_cast<double>(depth));
    idle_cv_.notify_all();
  }
}

}  // namespace wck
