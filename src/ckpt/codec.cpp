#include "ckpt/codec.hpp"

#include <string>

#include "core/truncation.hpp"
#include "deflate/deflate.hpp"
#include "fpc/fpc.hpp"
#include "szlike/lorenzo.hpp"
#include "util/error.hpp"
#include "zfplike/block_codec.hpp"

namespace wck {
namespace {

/// Shared raw representation: rank, extents, then little-endian doubles.
Bytes serialize_raw(const NdArray<double>& array) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(array.rank()));
  for (std::size_t a = 0; a < array.rank(); ++a) w.varint(array.extent(a));
  w.f64_array(array.values());
  return w.take();
}

NdArray<double> parse_raw(std::span<const std::byte> data) {
  ByteReader r(data);
  const std::uint8_t rank = r.u8();
  if (rank < 1 || rank > kMaxRank) throw FormatError("raw array: invalid rank");
  Shape shape = Shape::of_rank(rank);
  for (std::size_t a = 0; a < rank; ++a) {
    shape[a] = r.varint();
    if (shape[a] == 0) throw FormatError("raw array: zero extent");
  }
  NdArray<double> out(shape);
  r.f64_array(out.values());
  if (!r.exhausted()) throw FormatError("raw array: trailing bytes");
  return out;
}

}  // namespace

Bytes NullCodec::do_encode(const NdArray<double>& array, StageTimes* times) const {
  StageTimes local;
  Bytes out;
  {
    ScopedStage stage(local, "other");
    out = serialize_raw(array);
  }
  if (times != nullptr) times->merge(local);
  return out;
}

NdArray<double> NullCodec::do_decode(std::span<const std::byte> data) const {
  return parse_raw(data);
}

Bytes GzipCodec::do_encode(const NdArray<double>& array, StageTimes* times) const {
  StageTimes local;
  Bytes raw;
  {
    ScopedStage stage(local, "other");
    raw = serialize_raw(array);
  }
  Bytes out;
  {
    ScopedStage stage(local, "gzip");
    out = gzip_compress(raw, DeflateOptions{level_});
  }
  if (times != nullptr) times->merge(local);
  return out;
}

NdArray<double> GzipCodec::do_decode(std::span<const std::byte> data) const {
  return parse_raw(gzip_decompress(data));
}

Bytes WaveletLossyCodec::do_encode(const NdArray<double>& array, StageTimes* times) const {
  CompressedArray comp = compressor_.compress(array);
  if (times != nullptr) times->merge(comp.times);
  return std::move(comp.data);
}

NdArray<double> WaveletLossyCodec::do_decode(std::span<const std::byte> data) const {
  return WaveletCompressor::decompress(data);
}

Bytes FpcCodec::do_encode(const NdArray<double>& array, StageTimes* times) const {
  StageTimes local;
  ByteWriter w;
  {
    ScopedStage stage(local, "fpc");
    w.u8(static_cast<std::uint8_t>(array.rank()));
    for (std::size_t a = 0; a < array.rank(); ++a) w.varint(array.extent(a));
    const Bytes body = fpc_compress(array.values(), FpcOptions{table_log2_});
    w.raw(body.data(), body.size());
  }
  if (times != nullptr) times->merge(local);
  return w.take();
}

NdArray<double> FpcCodec::do_decode(std::span<const std::byte> data) const {
  ByteReader r(data);
  const std::uint8_t rank = r.u8();
  if (rank < 1 || rank > kMaxRank) throw FormatError("fpc codec: invalid rank");
  Shape shape = Shape::of_rank(rank);
  for (std::size_t a = 0; a < rank; ++a) shape[a] = r.varint();
  std::vector<double> values = fpc_decompress(data.subspan(r.position()));
  return NdArray<double>(shape, std::move(values));
}

Bytes SzLikeCodec::do_encode(const NdArray<double>& array, StageTimes* times) const {
  StageTimes local;
  Bytes out;
  {
    ScopedStage stage(local, "szlike");
    out = szlike_compress(array, SzLikeOptions{error_bound_, 6});
  }
  if (times != nullptr) times->merge(local);
  return out;
}

NdArray<double> SzLikeCodec::do_decode(std::span<const std::byte> data) const {
  return szlike_decompress(data);
}

Bytes ZfpLikeCodec::do_encode(const NdArray<double>& array, StageTimes* times) const {
  StageTimes local;
  Bytes out;
  {
    ScopedStage stage(local, "zfplike");
    out = zfplike_compress(array, ZfpLikeOptions{precision_, 6});
  }
  if (times != nullptr) times->merge(local);
  return out;
}

NdArray<double> ZfpLikeCodec::do_decode(std::span<const std::byte> data) const {
  return zfplike_decompress(data);
}

Bytes TruncationCodec::do_encode(const NdArray<double>& array, StageTimes* times) const {
  StageTimes local;
  Bytes out;
  {
    ScopedStage stage(local, "truncation");
    out = truncation_compress(array, keep_, level_);
  }
  if (times != nullptr) times->merge(local);
  return out;
}

NdArray<double> TruncationCodec::do_decode(std::span<const std::byte> data) const {
  return truncation_decompress(data);
}

const Codec& codec_for_decoding(std::string_view name) {
  static const NullCodec kNull;
  static const GzipCodec kGzip;
  static const WaveletLossyCodec kLossy;
  static const FpcCodec kFpc;
  static const TruncationCodec kTruncation;
  static const SzLikeCodec kSzLike;
  static const ZfpLikeCodec kZfpLike;
  if (name == "null") return kNull;
  if (name == "gzip") return kGzip;
  if (name == "wavelet-lossy") return kLossy;
  if (name == "fpc") return kFpc;
  if (name == "truncation") return kTruncation;
  if (name == "szlike") return kSzLike;
  if (name == "zfplike") return kZfpLike;
  throw FormatError("unknown checkpoint codec: " + std::string(name));
}

}  // namespace wck
