// CheckpointManager — the resilience policy layer over write/restore.
//
// A checkpoint exists to survive failures, so the write path must
// tolerate transient I/O errors (retry with capped exponential
// backoff), the store must survive a corrupt file (keep-K generation
// rotation behind a CRC manifest), and restore must degrade loudly and
// gracefully instead of failing or — worse — silently restoring wrong
// state: newest generation first, CRC-verified, falling back through
// older generations and finally to XOR-parity reconstruction
// (src/redundancy) when a peer-memory store is attached. scrub()
// proactively verifies every generation and quarantines corrupt ones.
//
// Layout in the managed directory:
//   ckpt.<step>.wck      one generation per committed step
//   MANIFEST             "wck-manifest v1" + one "<step> <crc32-hex>
//                        <size> <file>" line per generation, newest
//                        first; committed atomically+durably after
//                        every mutation
//   *.quarantined.<n>    corrupt generations set aside by scrub()
//
// Telemetry: ckpt.write.retries / ckpt.write.giveups,
// ckpt.restore.fallbacks / ckpt.restore.parity_reconstructions,
// ckpt.scrub.checked / ckpt.scrub.corrupt, gauge ckpt.generations.
//
// Parallelism: the manager is codec-agnostic; pass a WaveletLossyCodec
// whose CompressionParams set threads (or export WCK_THREADS) and every
// generation's entropy stage runs on the sharded parallel deflate
// engine (src/deflate/parallel.hpp) with no manager changes.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/codec.hpp"
#include "io/io_backend.hpp"
#include "redundancy/xor_parity.hpp"
#include "util/backoff.hpp"
#include "util/thread_annotations.hpp"

namespace wck {

/// Capped exponential backoff for retriable (IoError) write failures.
/// The ladder itself lives in util/backoff.hpp so the StoreClient's
/// retry layer and the manager share one cadence definition.
using RetryPolicy = BackoffPolicy;

/// Where a successful restore actually came from.
enum class RestoreSource : std::uint8_t {
  kPrimary,          ///< newest generation, first try
  kOlderGeneration,  ///< a fallback generation
  kParity,           ///< XOR-parity reconstruction from the attached store
};

[[nodiscard]] const char* restore_source_name(RestoreSource source) noexcept;

/// Result of CheckpointManager::restore — says which state the
/// application is actually running from.
struct RestoreOutcome {
  CheckpointInfo info;
  std::uint64_t step = 0;
  RestoreSource source = RestoreSource::kPrimary;
  std::size_t generations_tried = 0;  ///< candidates attempted (>=1)
  std::filesystem::path path;         ///< restored file (empty for parity)
};

struct ScrubReport {
  std::size_t checked = 0;
  std::size_t corrupt = 0;
  std::vector<std::filesystem::path> quarantined;
};

struct CheckpointManagerOptions {
  std::size_t keep_generations = 3;  ///< >= 1
  RetryPolicy retry;
  /// Byte quota over the committed generations (manifest sizes). A
  /// write() whose payload would push the post-rotation total past this
  /// throws QuotaExceededError *before* touching the store; 0 disables.
  /// Accounting follows the manifest, so rotation and scrub() quarantine
  /// both return their bytes to the budget.
  std::uint64_t max_total_bytes = 0;
};

class CheckpointManager {
 public:
  using Options = CheckpointManagerOptions;

  /// Creates `dir` if needed and loads an existing MANIFEST (restart
  /// support). The codec and backend must outlive the manager; a null
  /// backend means the process default (default_io_backend()).
  CheckpointManager(std::filesystem::path dir, const Codec& codec, Options options = {},
                    IoBackend* io = nullptr);

  CheckpointManager(const CheckpointManager&) = delete;
  CheckpointManager& operator=(const CheckpointManager&) = delete;

  /// Serializes the registry and durably commits generation
  /// `ckpt.<step>.wck`, retrying per the RetryPolicy; rotates out
  /// generations beyond keep_generations and commits the manifest.
  /// Throws IoError after the final attempt fails (counted as a
  /// giveup). Also mirrors the payload into the attached parity store,
  /// when there is one.
  ///
  /// The manager is a monitor: write/restore/scrub serialize on one
  /// internal mutex, so concurrent callers (e.g. an async flush racing
  /// a foreground scrub) see consistent generations and manifest state.
  [[nodiscard]] CheckpointInfo write(const CheckpointRegistry& registry, std::uint64_t step)
      WCK_EXCLUDES(mu_);

  /// Restores the newest restorable generation: read + manifest CRC
  /// check + transactional decode, falling back through older
  /// generations, then parity reconstruction. Throws CorruptDataError
  /// when nothing is restorable. The registry arrays are only modified
  /// by the generation that actually restores.
  [[nodiscard]] RestoreOutcome restore(const CheckpointRegistry& registry) WCK_EXCLUDES(mu_);

  /// Verifies every generation against the manifest (size + CRC + file
  /// magic); corrupt ones are renamed to `<file>.quarantined.<n>` and
  /// dropped from the manifest.
  [[nodiscard]] ScrubReport scrub() WCK_EXCLUDES(mu_);

  /// Attaches a peer-memory parity store: write() mirrors every payload
  /// to `rank`, restore() falls back to store.retrieve(rank) when no
  /// on-disk generation is restorable. The store must outlive the
  /// manager; nullptr detaches.
  void attach_parity_store(InMemoryCheckpointStore* store, std::size_t rank)
      WCK_EXCLUDES(mu_);

  /// One committed generation (manifest order: newest first).
  struct Generation {
    std::uint64_t step = 0;
    std::uint32_t crc = 0;
    std::uint64_t size = 0;
    std::string file;  ///< name relative to dir()
  };
  /// Copy of the committed generations (newest first). Returned by
  /// value: a reference into the live vector could be invalidated (and
  /// raced) by a concurrent write()/scrub().
  [[nodiscard]] std::vector<Generation> generations() const WCK_EXCLUDES(mu_);
  /// Stale `*.tmp.*` files (commits torn by a crash) removed by the
  /// constructor's sweep. They were never part of the manifest, so
  /// deleting them is always safe — but a crashed process would
  /// otherwise leak them forever.
  [[nodiscard]] std::size_t tmp_files_swept() const noexcept { return tmp_swept_; }
  /// Sum of the committed generation sizes per the manifest — the value
  /// the max_total_bytes quota is enforced against.
  [[nodiscard]] std::uint64_t total_stored_bytes() const WCK_EXCLUDES(mu_);
  [[nodiscard]] const std::filesystem::path& dir() const noexcept { return dir_; }

 private:
  [[nodiscard]] IoBackend& io() const noexcept;
  void sweep_stale_tmp_files() WCK_REQUIRES(mu_);
  void load_manifest() WCK_REQUIRES(mu_);
  void commit_manifest() WCK_REQUIRES(mu_);
  void commit_with_retry(const std::filesystem::path& path, const Bytes& data);
  void rotate() WCK_REQUIRES(mu_);
  /// Reads + verifies + restores one generation; returns the info on
  /// success, nullopt (after counting the reason) on any failure.
  std::optional<CheckpointInfo> try_restore_generation(const Generation& gen,
                                                       const CheckpointRegistry& registry);

  // Immutable after construction — need no guard.
  const std::filesystem::path dir_;
  const Codec& codec_;
  const Options options_;
  IoBackend* const io_;

  mutable Mutex mu_;
  std::vector<Generation> generations_ WCK_GUARDED_BY(mu_);  ///< newest first
  InMemoryCheckpointStore* parity_store_ WCK_GUARDED_BY(mu_) = nullptr;
  std::size_t parity_rank_ WCK_GUARDED_BY(mu_) = 0;
  std::uint64_t quarantine_seq_ WCK_GUARDED_BY(mu_) = 0;
  std::size_t tmp_swept_ = 0;  ///< set once in the constructor
};

}  // namespace wck
