#include "ckpt/checkpoint.hpp"

#include "io/io_backend.hpp"
#include "telemetry/telemetry.hpp"
#include "util/checksum.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace wck {
namespace {

constexpr std::uint32_t kMagic = 0x504B4357;  // "WCKP" little-endian
constexpr std::uint8_t kVersion = 1;

}  // namespace

void CheckpointRegistry::add(const std::string& name, NdArray<double>* array) {
  if (array == nullptr) throw InvalidArgumentError("registry: null array for " + name);
  if (name.empty()) throw InvalidArgumentError("registry: empty field name");
  if (find(name) != nullptr) {
    throw InvalidArgumentError("registry: duplicate field name " + name);
  }
  entries_.push_back(Entry{name, array});
}

NdArray<double>* CheckpointRegistry::find(const std::string& name) const noexcept {
  for (const Entry& e : entries_) {
    if (e.name == name) return e.array;
  }
  return nullptr;
}

std::size_t CheckpointRegistry::total_bytes() const noexcept {
  std::size_t n = 0;
  for (const Entry& e : entries_) n += e.array->size_bytes();
  return n;
}

Bytes serialize_checkpoint(const CheckpointRegistry& registry, const Codec& codec,
                           std::uint64_t step, CheckpointInfo* info) {
  WCK_TRACE_SPAN("ckpt.serialize");
  CheckpointInfo local;
  local.step = step;
  local.field_count = registry.entries().size();

  ByteWriter w;
  w.u32(kMagic);
  w.u8(kVersion);
  w.varint(step);
  w.varint(registry.entries().size());
  for (const auto& e : registry.entries()) {
    const Bytes payload = codec.encode(*e.array, &local.times);
    w.str(e.name);
    w.str(codec.name());
    w.varint(payload.size());
    w.raw(payload.data(), payload.size());
    w.u32(crc32(std::span<const std::byte>(payload)));
    local.original_bytes += e.array->size_bytes();
    local.stored_bytes += payload.size();
  }
  if (info != nullptr) *info = local;
  WCK_COUNTER_ADD("ckpt.serialize.fields", local.field_count);
  WCK_COUNTER_ADD("ckpt.serialize.bytes_in", local.original_bytes);
  WCK_COUNTER_ADD("ckpt.serialize.bytes_out", local.stored_bytes);
  return w.take();
}

namespace {

/// Decodes and stages every field; throws (without touching the
/// registry arrays) on any corruption. Split out so restore_checkpoint
/// can count staged-commit aborts on the telemetry side.
CheckpointInfo restore_checkpoint_impl(std::span<const std::byte> data,
                                       const CheckpointRegistry& registry) {
  ByteReader r(data);
  if (r.u32() != kMagic) throw FormatError("checkpoint: bad magic");
  const std::uint8_t version = r.u8();
  if (version != kVersion) {
    throw FormatError("checkpoint: unsupported version " + std::to_string(version));
  }

  CheckpointInfo info;
  info.step = r.varint();
  info.field_count = r.varint();

  // Decode every field before touching the registry: a restore must be
  // transactional, so a corrupt later field cannot leave the application
  // with some arrays restored and others still holding live state.
  std::vector<std::pair<NdArray<double>*, NdArray<double>>> staged;
  staged.reserve(info.field_count <= 1024 ? info.field_count : 0);
  for (std::size_t f = 0; f < info.field_count; ++f) {
    const std::string name = r.str();
    const std::string codec_name = r.str();
    const std::uint64_t size = r.varint();
    const auto payload = r.raw(size);
    const std::uint32_t want_crc = r.u32();
    if (crc32(payload) != want_crc) {
      WCK_COUNTER_ADD("ckpt.crc_failures", 1);
      throw CorruptDataError("checkpoint: CRC mismatch in field " + name);
    }

    NdArray<double>* target = registry.find(name);
    if (target == nullptr) {
      throw FormatError("checkpoint: field " + name + " is not registered");
    }
    const Codec& codec = codec_for_decoding(codec_name);
    NdArray<double> decoded = codec.decode(payload);
    if (target->size() != 0 && decoded.shape() != target->shape()) {
      throw FormatError("checkpoint: field " + name + " shape " + decoded.shape().to_string() +
                        " does not match registered array " + target->shape().to_string());
    }
    info.original_bytes += decoded.size_bytes();
    info.stored_bytes += size;
    staged.emplace_back(target, std::move(decoded));
  }
  if (!r.exhausted()) throw FormatError("checkpoint: trailing bytes");
  for (auto& [target, decoded] : staged) *target = std::move(decoded);
  return info;
}

}  // namespace

CheckpointInfo restore_checkpoint(std::span<const std::byte> data,
                                  const CheckpointRegistry& registry) {
  WCK_TRACE_SPAN("ckpt.restore");
  try {
    const CheckpointInfo info = restore_checkpoint_impl(data, registry);
    WCK_COUNTER_ADD("ckpt.restore.fields", info.field_count);
    WCK_COUNTER_ADD("ckpt.restore.bytes_in", info.stored_bytes);
    WCK_COUNTER_ADD("ckpt.restore.bytes_out", info.original_bytes);
    return info;
  } catch (...) {
    // The staged-then-commit restore rolled back: no registry array was
    // modified. Count the abort so operators can see corrupt streams.
    WCK_COUNTER_ADD("ckpt.restore.aborts", 1);
    throw;
  }
}

CheckpointInfo write_checkpoint(const std::filesystem::path& path,
                                const CheckpointRegistry& registry, const Codec& codec,
                                std::uint64_t step, IoBackend& io) {
  WCK_TRACE_SPAN("ckpt.write");
  const WallTimer write_timer;
  CheckpointInfo info;
  const Bytes data = serialize_checkpoint(registry, codec, step, &info);

  // Durable commit: unique temp + fsync(file) + rename + fsync(dir).
  // Without the fsyncs a crash shortly after the rename can still
  // surface an empty or torn file under the committed name.
  atomic_write_durable(io, path, data);
  WCK_COUNTER_ADD("ckpt.write.files", 1);
  WCK_HISTOGRAM_RECORD("ckpt.write.seconds", write_timer.seconds());
  return info;
}

CheckpointInfo write_checkpoint(const std::filesystem::path& path,
                                const CheckpointRegistry& registry, const Codec& codec,
                                std::uint64_t step) {
  return write_checkpoint(path, registry, codec, step, default_io_backend());
}

CheckpointInfo read_checkpoint(const std::filesystem::path& path,
                               const CheckpointRegistry& registry, IoBackend& io) {
  WCK_TRACE_SPAN("ckpt.read");
  const Bytes data = io.read_file(path);
  return restore_checkpoint(data, registry);
}

CheckpointInfo read_checkpoint(const std::filesystem::path& path,
                               const CheckpointRegistry& registry) {
  return read_checkpoint(path, registry, default_io_backend());
}

}  // namespace wck
