#include "ckpt/incremental.hpp"

#include <cstring>

#include "util/checksum.hpp"
#include "util/error.hpp"

namespace wck {
namespace {

constexpr std::uint32_t kMagic = 0x494B4357;  // "WCKI" little-endian
constexpr std::uint8_t kKindFull = 0;
constexpr std::uint8_t kKindDelta = 1;

}  // namespace

Bytes gather_image(const CheckpointRegistry& registry) {
  ByteWriter w;
  w.varint(registry.entries().size());
  for (const auto& e : registry.entries()) {
    w.str(e.name);
    w.u8(static_cast<std::uint8_t>(e.array->rank()));
    for (std::size_t a = 0; a < e.array->rank(); ++a) w.varint(e.array->extent(a));
    w.f64_array(e.array->values());
  }
  return w.take();
}

void scatter_image(std::span<const std::byte> image, const CheckpointRegistry& registry) {
  ByteReader r(image);
  const std::uint64_t fields = r.varint();
  for (std::uint64_t f = 0; f < fields; ++f) {
    const std::string name = r.str();
    const std::uint8_t rank = r.u8();
    if (rank < 1 || rank > kMaxRank) throw FormatError("image: invalid rank");
    Shape shape = Shape::of_rank(rank);
    for (std::size_t a = 0; a < rank; ++a) shape[a] = r.varint();

    NdArray<double>* target = registry.find(name);
    if (target == nullptr) throw FormatError("image: field " + name + " is not registered");
    if (target->size() != 0 && target->shape() != shape) {
      throw FormatError("image: field " + name + " shape mismatch");
    }
    NdArray<double> decoded(shape);
    r.f64_array(decoded.values());
    *target = std::move(decoded);
  }
  if (!r.exhausted()) throw FormatError("image: trailing bytes");
}

IncrementalCheckpointer::IncrementalCheckpointer(std::size_t block_bytes,
                                                 std::size_t full_every)
    : block_bytes_(block_bytes), full_every_(full_every) {
  if (block_bytes == 0) throw InvalidArgumentError("incremental: block size must be positive");
  if (full_every == 0) throw InvalidArgumentError("incremental: full_every must be >= 1");
}

IncrementalCheckpoint IncrementalCheckpointer::checkpoint(const CheckpointRegistry& registry,
                                                          std::uint64_t step) {
  Bytes image = gather_image(registry);
  const std::size_t blocks = (image.size() + block_bytes_ - 1) / block_bytes_;

  IncrementalCheckpoint out;
  out.step = step;
  out.image_bytes = image.size();
  out.total_blocks = blocks;

  const bool emit_full = previous_image_.empty() || since_full_ + 1 >= full_every_ ||
                         previous_image_.size() != image.size();

  ByteWriter w;
  w.u32(kMagic);
  w.u8(emit_full ? kKindFull : kKindDelta);
  w.varint(step);
  w.varint(image.size());
  w.varint(block_bytes_);

  if (emit_full) {
    out.is_full = true;
    out.dirty_blocks = blocks;
    w.raw(image.data(), image.size());
    since_full_ = 0;
  } else {
    // Collect dirty blocks vs the previous image.
    std::vector<std::uint64_t> dirty;
    for (std::size_t b = 0; b < blocks; ++b) {
      const std::size_t off = b * block_bytes_;
      const std::size_t len = std::min(block_bytes_, image.size() - off);
      if (std::memcmp(image.data() + off, previous_image_.data() + off, len) != 0) {
        dirty.push_back(b);
      }
    }
    out.dirty_blocks = dirty.size();
    w.varint(dirty.size());
    for (const std::uint64_t b : dirty) {
      const std::size_t off = static_cast<std::size_t>(b) * block_bytes_;
      const std::size_t len = std::min(block_bytes_, image.size() - off);
      w.varint(b);
      w.raw(image.data() + off, len);
    }
    ++since_full_;
  }
  w.u32(crc32(std::span<const std::byte>(image)));

  previous_image_ = std::move(image);
  out.data = w.take();
  return out;
}

CheckpointInfo IncrementalCheckpointer::restore_chain(
    std::span<const IncrementalCheckpoint> chain, const CheckpointRegistry& registry) {
  if (chain.empty()) throw InvalidArgumentError("incremental: empty restore chain");

  Bytes image;
  std::uint64_t step = 0;
  std::size_t stored = 0;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    ByteReader r(chain[i].data);
    if (r.u32() != kMagic) throw FormatError("incremental: bad magic");
    const std::uint8_t kind = r.u8();
    step = r.varint();
    const std::uint64_t image_size = r.varint();
    const std::uint64_t block_bytes = r.varint();
    if (block_bytes == 0) throw FormatError("incremental: zero block size");
    stored += chain[i].data.size();

    if (kind == kKindFull) {
      if (i != 0) throw FormatError("incremental: full image after start of chain");
      const auto full = r.raw(image_size);
      image.assign(full.begin(), full.end());
    } else if (kind == kKindDelta) {
      if (i == 0) throw FormatError("incremental: chain must start with a full image");
      if (image.size() != image_size) {
        throw FormatError("incremental: delta image size mismatch");
      }
      const std::uint64_t dirty = r.varint();
      for (std::uint64_t dblk = 0; dblk < dirty; ++dblk) {
        const std::uint64_t b = r.varint();
        const std::size_t off = static_cast<std::size_t>(b) * block_bytes;
        if (off >= image.size()) throw FormatError("incremental: block beyond image");
        const std::size_t len = std::min<std::size_t>(block_bytes, image.size() - off);
        const auto bytes = r.raw(len);
        std::memcpy(image.data() + off, bytes.data(), len);
      }
    } else {
      throw FormatError("incremental: unknown record kind");
    }

    const std::uint32_t want = r.u32();
    if (!r.exhausted()) throw FormatError("incremental: trailing bytes");
    if (crc32(std::span<const std::byte>(image)) != want) {
      throw CorruptDataError("incremental: image CRC mismatch after applying record " +
                             std::to_string(i));
    }
  }

  scatter_image(image, registry);
  CheckpointInfo info;
  info.step = step;
  info.field_count = registry.entries().size();
  info.original_bytes = registry.total_bytes();
  info.stored_bytes = stored;
  return info;
}

}  // namespace wck
