#include "ckpt/manager.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <thread>

#include "telemetry/telemetry.hpp"
#include "util/checksum.hpp"
#include "util/error.hpp"

namespace wck {
namespace {

constexpr const char* kManifestName = "MANIFEST";
constexpr const char* kManifestHeader = "wck-manifest v1";
constexpr std::uint32_t kCheckpointMagic = 0x504B4357;  // mirrors checkpoint.cpp

std::string generation_file_name(std::uint64_t step) {
  return "ckpt." + std::to_string(step) + ".wck";
}

/// Parses "ckpt.<step>.wck"; nullopt for anything else.
std::optional<std::uint64_t> step_from_file_name(const std::string& name) {
  constexpr std::string_view prefix = "ckpt.";
  constexpr std::string_view suffix = ".wck";
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.rfind(prefix, 0) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  const std::string_view digits(name.data() + prefix.size(),
                                name.size() - prefix.size() - suffix.size());
  std::uint64_t step = 0;
  const auto [ptr, ec] = std::from_chars(digits.begin(), digits.end(), step);
  if (ec != std::errc{} || ptr != digits.end()) return std::nullopt;
  return step;
}

}  // namespace

const char* restore_source_name(RestoreSource source) noexcept {
  switch (source) {
    case RestoreSource::kPrimary: return "primary";
    case RestoreSource::kOlderGeneration: return "older-generation";
    case RestoreSource::kParity: return "parity";
  }
  return "unknown";
}

CheckpointManager::CheckpointManager(std::filesystem::path dir, const Codec& codec,
                                     Options options, IoBackend* io)
    : dir_(std::move(dir)), codec_(codec), options_(options), io_(io) {
  if (options_.keep_generations == 0) {
    throw InvalidArgumentError("CheckpointManager: keep_generations must be >= 1");
  }
  if (options_.retry.max_attempts < 1) {
    throw InvalidArgumentError("CheckpointManager: retry.max_attempts must be >= 1");
  }
  std::filesystem::create_directories(dir_);
  MutexLock lk(mu_);
  load_manifest();
  sweep_stale_tmp_files();
}

void CheckpointManager::sweep_stale_tmp_files() {
  // atomic_write_durable stages every commit as `<target>.tmp.<pid>.<seq>`
  // and removes the staging file on both success and failure — so any
  // `*.tmp.*` file found at open time is debris from a process that
  // died mid-commit. None of them are referenced by the manifest;
  // removing them reclaims space and keeps crash-kill soaks from
  // accreting garbage across restarts.
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.find(".tmp.") == std::string::npos) continue;
    try {
      if (io().remove_file(entry.path())) {
        ++tmp_swept_;
        WCK_EVENT(kTmpSwept, 0, name);
      }
    } catch (const IoError&) {
      // Best effort: an unremovable stale temp is annoying, not fatal.
      WCK_COUNTER_ADD("ckpt.tmp.sweep_failures", 1);
    }
  }
  if (tmp_swept_ > 0) WCK_COUNTER_ADD("ckpt.tmp.swept", tmp_swept_);
}

IoBackend& CheckpointManager::io() const noexcept {
  return io_ != nullptr ? *io_ : default_io_backend();
}

void CheckpointManager::load_manifest() {
  generations_.clear();
  const std::filesystem::path manifest = dir_ / kManifestName;
  bool manifest_ok = false;
  if (io().exists(manifest)) {
    try {
      const Bytes raw = io().read_file(manifest);
      const std::string text(reinterpret_cast<const char*>(raw.data()), raw.size());
      std::size_t pos = 0;
      std::size_t line_no = 0;
      manifest_ok = true;
      while (pos < text.size()) {
        const std::size_t nl = text.find('\n', pos);
        const std::string line =
            text.substr(pos, nl == std::string::npos ? nl : nl - pos);
        pos = nl == std::string::npos ? text.size() : nl + 1;
        if (line.empty()) continue;
        if (line_no++ == 0) {
          if (line != kManifestHeader) {
            manifest_ok = false;
            break;
          }
          continue;
        }
        unsigned long long step = 0;
        unsigned long long size = 0;
        char crc_hex[16] = {0};
        char file[256] = {0};
        if (std::sscanf(line.c_str(), "%llu %15s %llu %255s", &step, crc_hex, &size,
                        file) != 4) {
          manifest_ok = false;
          break;
        }
        Generation gen;
        gen.step = step;
        gen.size = size;
        gen.crc = static_cast<std::uint32_t>(std::strtoul(crc_hex, nullptr, 16));
        gen.file = file;
        generations_.push_back(std::move(gen));
      }
      if (!manifest_ok) generations_.clear();
    } catch (const IoError&) {
      manifest_ok = false;
    }
  }

  if (!manifest_ok) {
    // No (readable) manifest: recover what we can by scanning for
    // generation files. size==0 marks "no manifest metadata" — restore
    // then relies solely on the per-field CRCs inside the file.
    WCK_COUNTER_ADD("ckpt.manifest.rebuilds", 1);
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
      const auto step = step_from_file_name(entry.path().filename().string());
      if (!step.has_value()) continue;
      Generation gen;
      gen.step = *step;
      gen.file = entry.path().filename().string();
      generations_.push_back(std::move(gen));
    }
    std::sort(generations_.begin(), generations_.end(),
              [](const Generation& a, const Generation& b) { return a.step > b.step; });
  }
  WCK_GAUGE_SET("ckpt.generations", static_cast<double>(generations_.size()));
}

void CheckpointManager::commit_manifest() {
  std::string text = std::string(kManifestHeader) + "\n";
  char line[384];
  for (const Generation& gen : generations_) {
    std::snprintf(line, sizeof(line), "%llu %08x %llu %s\n",
                  static_cast<unsigned long long>(gen.step), gen.crc,
                  static_cast<unsigned long long>(gen.size), gen.file.c_str());
    text += line;
  }
  commit_with_retry(dir_ / kManifestName,
                    Bytes(reinterpret_cast<const std::byte*>(text.data()),
                          reinterpret_cast<const std::byte*>(text.data()) + text.size()));
}

void CheckpointManager::commit_with_retry(const std::filesystem::path& path,
                                          const Bytes& data) {
  Backoff backoff(options_.retry);
  for (;;) {
    try {
      atomic_write_durable(io(), path, data);
      return;
    } catch (const IoError&) {
      if (!backoff.try_again()) {
        WCK_COUNTER_ADD("ckpt.write.giveups", 1);
        WCK_EVENT(kCkptGiveup, 0,
                  path.filename().string() + " after " +
                      std::to_string(backoff.failures()) + " attempts");
        throw;
      }
      WCK_COUNTER_ADD("ckpt.write.retries", 1);
      WCK_EVENT(kCkptRetry, 0,
                path.filename().string() + " attempt " +
                    std::to_string(backoff.failures()) + "/" +
                    std::to_string(options_.retry.max_attempts));
    }
  }
}

CheckpointInfo CheckpointManager::write(const CheckpointRegistry& registry,
                                        std::uint64_t step) {
  WCK_TRACE_SPAN("ckpt.manager.write");
  WCK_EVENT(kCkptBegin, step, "");
  CheckpointInfo info;
  const Bytes data = serialize_checkpoint(registry, codec_, step, &info);

  // Monitor section: generation list + manifest mutate together.
  MutexLock lk(mu_);
  if (options_.max_total_bytes != 0) {
    // Rotation-aware admission: charge only the generations that would
    // survive this commit (same-step rewrite replaces its entry, and
    // anything past keep_generations rotates out), so a full store whose
    // oldest generation is about to rotate still accepts writes that fit
    // the post-rotation budget. Checked before any I/O: a rejected put
    // leaves the store byte-identical.
    // Simulate the post-commit survivor set: existing generations minus
    // any same-step entry, plus the new one, newest keep_generations by
    // step. The new payload is charged even when it would itself rotate
    // out immediately — it exists on disk until rotate() runs.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> sim;  // (step, size)
    sim.reserve(generations_.size() + 1);
    sim.emplace_back(step, data.size());
    for (const Generation& g : generations_) {
      if (g.step != step) sim.emplace_back(g.step, g.size);
    }
    std::sort(sim.begin(), sim.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    std::uint64_t after = data.size();
    for (std::size_t i = 0; i < sim.size() && i < options_.keep_generations; ++i) {
      if (sim[i].first != step) after += sim[i].second;
    }
    if (after > options_.max_total_bytes) {
      WCK_COUNTER_ADD("ckpt.quota.rejections", 1);
      WCK_EVENT(kQuotaRejected, step,
                std::to_string(after) + " bytes would exceed quota " +
                    std::to_string(options_.max_total_bytes));
      throw QuotaExceededError(
          "CheckpointManager: step " + std::to_string(step) + " needs " +
          std::to_string(after) + " bytes but quota is " +
          std::to_string(options_.max_total_bytes) + " (" + dir_.string() + ")");
    }
  }
  Generation gen;
  gen.step = step;
  gen.crc = crc32(std::span<const std::byte>(data));
  gen.size = data.size();
  gen.file = generation_file_name(step);
  commit_with_retry(dir_ / gen.file, data);

  // Same-step rewrite replaces the old entry instead of duplicating it.
  std::erase_if(generations_, [&](const Generation& g) { return g.step == step; });
  generations_.insert(generations_.begin(), std::move(gen));
  std::sort(generations_.begin(), generations_.end(),
            [](const Generation& a, const Generation& b) { return a.step > b.step; });
  rotate();
  commit_manifest();
  WCK_GAUGE_SET("ckpt.generations", static_cast<double>(generations_.size()));
  WCK_EVENT(kCkptCommit, step,
            generation_file_name(step) + " " + std::to_string(info.stored_bytes) +
                " bytes");

  if (parity_store_ != nullptr) parity_store_->store(parity_rank_, data);
  return info;
}

void CheckpointManager::rotate() {
  while (generations_.size() > options_.keep_generations) {
    const Generation old = generations_.back();
    generations_.pop_back();
    try {
      // false (already gone) is as good as removed here.
      (void)io().remove_file(dir_ / old.file);
      WCK_COUNTER_ADD("ckpt.rotate.removed", 1);
      WCK_EVENT(kCkptRotate, old.step, old.file);
    } catch (const IoError&) {
      // A failed delete must not fail the checkpoint that just
      // committed; the orphan is picked up by a later rotation/scrub.
      WCK_COUNTER_ADD("ckpt.rotate.remove_failures", 1);
    }
  }
}

std::optional<CheckpointInfo> CheckpointManager::try_restore_generation(
    const Generation& gen, const CheckpointRegistry& registry) {
  Bytes data;
  try {
    data = io().read_file(dir_ / gen.file);
  } catch (const IoError&) {
    WCK_COUNTER_ADD("ckpt.restore.read_failures", 1);
    return std::nullopt;
  }
  // Whole-file manifest check first: cheaper than decoding, and catches
  // truncation/corruption even in fields the registry doesn't cover.
  if (gen.size != 0 &&
      (data.size() != gen.size || crc32(std::span<const std::byte>(data)) != gen.crc)) {
    WCK_COUNTER_ADD("ckpt.restore.manifest_mismatches", 1);
    return std::nullopt;
  }
  try {
    return restore_checkpoint(data, registry);
  } catch (const Error&) {
    // Transactional: the registry was not touched (aborts counted by
    // restore_checkpoint itself).
    return std::nullopt;
  }
}

RestoreOutcome CheckpointManager::restore(const CheckpointRegistry& registry) {
  WCK_TRACE_SPAN("ckpt.manager.restore");
  MutexLock lk(mu_);
  WCK_EVENT(kRestoreBegin, 0, std::to_string(generations_.size()) + " generations");
  RestoreOutcome outcome;
  for (std::size_t i = 0; i < generations_.size(); ++i) {
    ++outcome.generations_tried;
    auto info = try_restore_generation(generations_[i], registry);
    if (!info.has_value()) {
      WCK_EVENT(kRestoreFallback, generations_[i].step, generations_[i].file);
      continue;
    }
    outcome.info = std::move(*info);
    outcome.step = generations_[i].step;
    outcome.path = dir_ / generations_[i].file;
    outcome.source = i == 0 ? RestoreSource::kPrimary : RestoreSource::kOlderGeneration;
    if (i > 0) WCK_COUNTER_ADD("ckpt.restore.fallbacks", 1);
    WCK_EVENT(kRestoreDone, outcome.step, restore_source_name(outcome.source));
    return outcome;
  }

  if (parity_store_ != nullptr) {
    const std::optional<Bytes> payload = parity_store_->retrieve(parity_rank_);
    if (payload.has_value()) {
      try {
        outcome.info = restore_checkpoint(*payload, registry);
        outcome.step = outcome.info.step;
        outcome.source = RestoreSource::kParity;
        WCK_COUNTER_ADD("ckpt.restore.parity_reconstructions", 1);
        WCK_EVENT(kRestoreParity, outcome.step, "xor parity rank " +
                                                    std::to_string(parity_rank_));
        return outcome;
      } catch (const Error&) {
        // Fall through to the terminal error below.
      }
    }
  }
  WCK_EVENT(kRestoreFailed, 0,
            std::to_string(outcome.generations_tried) + " generations tried");
  throw CorruptDataError("CheckpointManager: no restorable generation in " + dir_.string() +
                         " (" + std::to_string(outcome.generations_tried) + " tried)");
}

ScrubReport CheckpointManager::scrub() {
  WCK_TRACE_SPAN("ckpt.manager.scrub");
  MutexLock lk(mu_);
  ScrubReport report;
  std::vector<Generation> kept;
  kept.reserve(generations_.size());
  for (const Generation& gen : generations_) {
    ++report.checked;
    bool ok = false;
    try {
      const Bytes data = io().read_file(dir_ / gen.file);
      const bool manifest_ok =
          gen.size == 0 ||
          (data.size() == gen.size && crc32(std::span<const std::byte>(data)) == gen.crc);
      // Even without manifest metadata a generation must at least open
      // with the checkpoint magic.
      const bool magic_ok =
          data.size() >= 4 && (static_cast<std::uint32_t>(data[0]) |
                               (static_cast<std::uint32_t>(data[1]) << 8) |
                               (static_cast<std::uint32_t>(data[2]) << 16) |
                               (static_cast<std::uint32_t>(data[3]) << 24)) == kCheckpointMagic;
      ok = manifest_ok && magic_ok;
    } catch (const IoError&) {
      ok = false;
    }
    if (ok) {
      kept.push_back(gen);
      continue;
    }
    ++report.corrupt;
    WCK_COUNTER_ADD("ckpt.scrub.corrupt", 1);
    WCK_EVENT(kScrubCorrupt, gen.step, gen.file);
    const std::filesystem::path from = dir_ / gen.file;
    const std::filesystem::path to =
        dir_ / (gen.file + ".quarantined." + std::to_string(quarantine_seq_++));
    try {
      io().rename_file(from, to);
      report.quarantined.push_back(to);
    } catch (const IoError&) {
      // Quarantine is best effort: dropping the entry from the manifest
      // already removes it from the restore chain.
      WCK_COUNTER_ADD("ckpt.scrub.quarantine_failures", 1);
    }
  }
  WCK_COUNTER_ADD("ckpt.scrub.checked", report.checked);
  if (report.corrupt > 0) {
    generations_ = std::move(kept);
    commit_manifest();
    WCK_GAUGE_SET("ckpt.generations", static_cast<double>(generations_.size()));
  }
  return report;
}

void CheckpointManager::attach_parity_store(InMemoryCheckpointStore* store,
                                            std::size_t rank) {
  MutexLock lk(mu_);
  parity_store_ = store;
  parity_rank_ = rank;
}

std::vector<CheckpointManager::Generation> CheckpointManager::generations() const {
  MutexLock lk(mu_);
  return generations_;
}

std::uint64_t CheckpointManager::total_stored_bytes() const {
  MutexLock lk(mu_);
  std::uint64_t total = 0;
  for (const Generation& gen : generations_) total += gen.size;
  return total;
}

}  // namespace wck
