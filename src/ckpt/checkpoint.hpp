// Application-level checkpoint/restart.
//
// Applications register their state arrays by name in a
// CheckpointRegistry; write_checkpoint() serializes every registered
// array through a chosen codec into a single self-describing,
// CRC-protected file (or byte buffer); read_checkpoint() restores the
// arrays in place. This is the application-facing layer the paper's
// "application-level checkpoint/restart" refers to.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "ckpt/codec.hpp"
#include "ndarray/ndarray.hpp"
#include "util/bytes.hpp"
#include "util/timer.hpp"

namespace wck {

/// Named mutable bindings to an application's state arrays.
class CheckpointRegistry {
 public:
  /// Binds `array` (owned by the application, must outlive the registry)
  /// under `name`. Duplicate names are rejected.
  void add(const std::string& name, NdArray<double>* array);

  struct Entry {
    std::string name;
    NdArray<double>* array;
  };
  [[nodiscard]] const std::vector<Entry>& entries() const noexcept { return entries_; }

  /// Pointer to the array bound to `name`, or nullptr.
  [[nodiscard]] NdArray<double>* find(const std::string& name) const noexcept;

  /// Total bytes of all registered arrays (uncompressed).
  [[nodiscard]] std::size_t total_bytes() const noexcept;

 private:
  std::vector<Entry> entries_;
};

/// Summary of a written or restored checkpoint.
struct CheckpointInfo {
  std::uint64_t step = 0;
  std::size_t field_count = 0;
  std::size_t original_bytes = 0;   ///< sum of raw array sizes
  std::size_t stored_bytes = 0;     ///< sum of encoded payload sizes
  StageTimes times;                 ///< accumulated codec stage times

  /// Eq. 5 over the whole checkpoint.
  [[nodiscard]] double compression_rate_percent() const noexcept {
    return original_bytes == 0 ? 0.0
                               : 100.0 * static_cast<double>(stored_bytes) /
                                     static_cast<double>(original_bytes);
  }
};

/// Serializes all registered arrays with `codec` into a byte buffer.
[[nodiscard]] Bytes serialize_checkpoint(const CheckpointRegistry& registry, const Codec& codec,
                                         std::uint64_t step, CheckpointInfo* info = nullptr);

/// Restores registered arrays from a serialized checkpoint. Every field
/// in the buffer must be registered (unknown fields throw FormatError);
/// registered fields missing from the buffer are left untouched.
[[nodiscard]] CheckpointInfo restore_checkpoint(std::span<const std::byte> data,
                                                const CheckpointRegistry& registry);

class IoBackend;

/// File variants of the above, routed through an IoBackend (explicit, or
/// the process default — see src/io/io_backend.hpp). write_checkpoint
/// commits durably and atomically: a process-unique `<path>.tmp.*` file
/// is written, fsynced, renamed over `path`, and the parent directory is
/// fsynced; concurrent writers to the same target cannot collide, and a
/// crash leaves `path` either absent, the old contents, or fully the new
/// contents.
[[nodiscard]] CheckpointInfo write_checkpoint(const std::filesystem::path& path,
                                              const CheckpointRegistry& registry,
                                              const Codec& codec, std::uint64_t step,
                                              IoBackend& io);
[[nodiscard]] CheckpointInfo write_checkpoint(const std::filesystem::path& path,
                                              const CheckpointRegistry& registry,
                                              const Codec& codec, std::uint64_t step);
[[nodiscard]] CheckpointInfo read_checkpoint(const std::filesystem::path& path,
                                             const CheckpointRegistry& registry,
                                             IoBackend& io);
[[nodiscard]] CheckpointInfo read_checkpoint(const std::filesystem::path& path,
                                             const CheckpointRegistry& registry);

}  // namespace wck
