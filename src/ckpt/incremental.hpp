// Incremental checkpointing (the paper's Sec. V baseline, refs [9-11]).
//
// Stores only the blocks that changed since the previous checkpoint.
// The paper argues this "may be limited in scientific applications
// because the entire arrays of physical quantities are frequently
// updated" — the ext_incremental bench reproduces exactly that: on
// MiniClimate state every block is dirty, while on a synthetic
// sparse-update workload incremental checkpoints are tiny.
//
// Recovery needs the chain from the last full image through every
// subsequent delta (the restart-cost drawback the paper cites from [9]).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "util/bytes.hpp"

namespace wck {

/// One emitted checkpoint: either a full image or a delta against the
/// previous checkpoint in the chain.
struct IncrementalCheckpoint {
  Bytes data;
  bool is_full = false;
  std::uint64_t step = 0;
  std::size_t image_bytes = 0;   ///< size of the raw state image
  std::size_t dirty_blocks = 0;  ///< blocks stored (== all for full)
  std::size_t total_blocks = 0;
};

/// Produces full/delta checkpoints of a registry's state and rebuilds
/// state from a chain of them.
class IncrementalCheckpointer {
 public:
  /// `block_bytes` is the dirty-detection granularity; `full_every`
  /// forces a full image every N checkpoints (N = 1 disables deltas).
  explicit IncrementalCheckpointer(std::size_t block_bytes = 4096,
                                   std::size_t full_every = 8);

  /// Snapshots the registry. The first call (and every full_every-th)
  /// emits a full image; others emit deltas vs the previous snapshot.
  [[nodiscard]] IncrementalCheckpoint checkpoint(const CheckpointRegistry& registry,
                                                 std::uint64_t step);

  /// Rebuilds the raw state image from a full checkpoint plus the
  /// ordered deltas that followed it, and scatters it into the registry
  /// arrays. Throws FormatError/CorruptDataError on malformed chains.
  static CheckpointInfo restore_chain(std::span<const IncrementalCheckpoint> chain,
                                      const CheckpointRegistry& registry);

  [[nodiscard]] std::size_t block_bytes() const noexcept { return block_bytes_; }

 private:
  std::size_t block_bytes_;
  std::size_t full_every_;
  std::size_t since_full_ = 0;
  Bytes previous_image_;
};

/// Serializes the registry's arrays into one contiguous raw image
/// (names + shapes + values); scatter_image is its inverse.
[[nodiscard]] Bytes gather_image(const CheckpointRegistry& registry);
void scatter_image(std::span<const std::byte> image, const CheckpointRegistry& registry);

}  // namespace wck
