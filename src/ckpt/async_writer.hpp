// Asynchronous (non-blocking) checkpointing — the paper's Sec. V
// reference [2] ("Design and modeling of a non-blocking checkpointing
// system"): overlap compression + I/O with computation.
//
// write_async() synchronously snapshots the registered arrays (a plain
// memcpy — the only part that must block the application) and hands
// encoding + file writing to a background worker. The application
// continues mutating its state immediately; the checkpoint reflects the
// snapshot instant.
//
// Degradation is explicit, never silent: the queue can be bounded with
// a backpressure policy (block / drop-oldest / reject-newest — every
// displaced job's future carries an IoError), the worker survives any
// throwing write (the exception lands in that job's future and later
// jobs proceed), and a configurable run of consecutive failures flips
// the writer into an unhealthy state where new submissions fail fast
// instead of queueing work against a dead storage path.
#pragma once

#include <chrono>
#include <deque>
#include <filesystem>
#include <future>
#include <thread>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/codec.hpp"
#include "util/thread_annotations.hpp"

namespace wck {

class IoBackend;

struct AsyncWriterOptions {
  /// Maximum queued (not yet started) snapshots; 0 = unbounded.
  std::size_t max_queue = 0;

  enum class Backpressure {
    kBlock,         ///< write_async blocks until the queue has room
    kDropOldest,    ///< evict the oldest queued job (its future gets IoError)
    kRejectNewest,  ///< fail the new job's future immediately
  };
  Backpressure backpressure = Backpressure::kBlock;

  /// After this many consecutive write failures the writer reports
  /// !healthy() and fails new submissions fast; 0 disables. A later
  /// successful write (of already-queued work) restores health.
  std::size_t unhealthy_after = 0;
};

class AsyncCheckpointWriter {
 public:
  /// The codec (and backend, when given) must outlive the writer; a
  /// null backend means the process default.
  explicit AsyncCheckpointWriter(const Codec& codec, AsyncWriterOptions options = {},
                                 IoBackend* io = nullptr);

  /// Drains pending writes, then stops the worker.
  ~AsyncCheckpointWriter();

  AsyncCheckpointWriter(const AsyncCheckpointWriter&) = delete;
  AsyncCheckpointWriter& operator=(const AsyncCheckpointWriter&) = delete;

  /// Snapshots `registry`'s arrays now; encodes and writes to `path` in
  /// the background. The returned future yields the write's
  /// CheckpointInfo (or rethrows its error — including backpressure
  /// eviction and unhealthy-writer rejection, both reported as IoError).
  /// Dropping the future silently swallows that error, hence
  /// [[nodiscard]].
  [[nodiscard]] std::future<CheckpointInfo> write_async(const std::filesystem::path& path,
                                                        const CheckpointRegistry& registry,
                                                        std::uint64_t step);

  /// Blocks until every queued write has completed (successfully or
  /// not). Errors are never swallowed: each failed job's exception
  /// stays stored in its future.
  void drain();

  /// Number of snapshots queued or in flight.
  [[nodiscard]] std::size_t pending() const;

  /// False once `unhealthy_after` consecutive writes have failed.
  [[nodiscard]] bool healthy() const;

  /// Current run of consecutive failed writes.
  [[nodiscard]] std::size_t consecutive_failures() const;

 private:
  struct Job {
    std::filesystem::path path;
    std::uint64_t step;
    // Owned snapshot: names + deep copies taken on the caller's thread.
    std::vector<std::pair<std::string, NdArray<double>>> snapshot;
    std::promise<CheckpointInfo> promise;
    // Enqueue instant, for the flush-latency histogram.
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();

  const Codec& codec_;
  const AsyncWriterOptions options_;
  IoBackend* io_;
  mutable Mutex mu_;
  CondVar cv_;
  CondVar idle_cv_;
  CondVar space_cv_;
  std::deque<Job> queue_ WCK_GUARDED_BY(mu_);
  std::size_t in_flight_ WCK_GUARDED_BY(mu_) = 0;
  std::size_t consecutive_failures_ WCK_GUARDED_BY(mu_) = 0;
  bool unhealthy_ WCK_GUARDED_BY(mu_) = false;
  bool stopping_ WCK_GUARDED_BY(mu_) = false;
  std::thread worker_;
};

}  // namespace wck
