// Asynchronous (non-blocking) checkpointing — the paper's Sec. V
// reference [2] ("Design and modeling of a non-blocking checkpointing
// system"): overlap compression + I/O with computation.
//
// write_async() synchronously snapshots the registered arrays (a plain
// memcpy — the only part that must block the application) and hands
// encoding + file writing to a background worker. The application
// continues mutating its state immediately; the checkpoint reflects the
// snapshot instant.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <filesystem>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/codec.hpp"

namespace wck {

class AsyncCheckpointWriter {
 public:
  /// The codec must outlive the writer.
  explicit AsyncCheckpointWriter(const Codec& codec);

  /// Drains pending writes, then stops the worker.
  ~AsyncCheckpointWriter();

  AsyncCheckpointWriter(const AsyncCheckpointWriter&) = delete;
  AsyncCheckpointWriter& operator=(const AsyncCheckpointWriter&) = delete;

  /// Snapshots `registry`'s arrays now; encodes and writes to `path` in
  /// the background. The returned future yields the write's
  /// CheckpointInfo (or rethrows its error).
  std::future<CheckpointInfo> write_async(const std::filesystem::path& path,
                                          const CheckpointRegistry& registry,
                                          std::uint64_t step);

  /// Blocks until every queued write has completed.
  void drain();

  /// Number of snapshots queued or in flight.
  [[nodiscard]] std::size_t pending() const;

 private:
  struct Job {
    std::filesystem::path path;
    std::uint64_t step;
    // Owned snapshot: names + deep copies taken on the caller's thread.
    std::vector<std::pair<std::string, NdArray<double>>> snapshot;
    std::promise<CheckpointInfo> promise;
    // Enqueue instant, for the flush-latency histogram.
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();

  const Codec& codec_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<Job> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::thread worker_;
};

}  // namespace wck
