// Checkpoint codecs: pluggable per-array (de)serialization strategies.
//
//  * NullCodec        — raw doubles (the paper's "without compression").
//  * GzipCodec        — gzip over the raw doubles (Fig. 6's lossless
//                       baseline, cr ~ 87 % on FP mesh data).
//  * WaveletLossyCodec— the paper's proposed pipeline (src/core).
//
// Every codec's output is self-describing (shape embedded), so decoding
// needs only the codec name, which the checkpoint file records.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "core/compressor.hpp"
#include "ndarray/ndarray.hpp"
#include "util/bytes.hpp"
#include "util/timer.hpp"

namespace wck {

class Codec {
 public:
  virtual ~Codec() = default;

  /// Stable identifier recorded in checkpoint files.
  [[nodiscard]] virtual std::string name() const = 0;

  /// True if decode(encode(x)) may differ from x.
  [[nodiscard]] virtual bool lossy() const = 0;

  /// Serializes one array. If `times` is non-null, stage timings are
  /// accumulated into it (stage names as in CompressedArray::times).
  [[nodiscard]] Bytes encode(const NdArray<double>& array, StageTimes* times = nullptr) const {
    return do_encode(array, times);
  }

  /// Reconstructs an array from encode() output.
  [[nodiscard]] NdArray<double> decode(std::span<const std::byte> data) const {
    return do_decode(data);
  }

 private:
  [[nodiscard]] virtual Bytes do_encode(const NdArray<double>& array,
                                        StageTimes* times) const = 0;
  [[nodiscard]] virtual NdArray<double> do_decode(std::span<const std::byte> data) const = 0;
};

/// Raw little-endian doubles with a shape header; no compression.
class NullCodec final : public Codec {
 public:
  [[nodiscard]] std::string name() const override { return "null"; }
  [[nodiscard]] bool lossy() const override { return false; }

 private:
  [[nodiscard]] Bytes do_encode(const NdArray<double>& array, StageTimes* times) const override;
  [[nodiscard]] NdArray<double> do_decode(std::span<const std::byte> data) const override;
};

/// gzip (our from-scratch DEFLATE) over the raw representation: the
/// lossless baseline the paper compares against in Fig. 6.
class GzipCodec final : public Codec {
 public:
  explicit GzipCodec(int level = 6) : level_(level) {}
  [[nodiscard]] std::string name() const override { return "gzip"; }
  [[nodiscard]] bool lossy() const override { return false; }

 private:
  [[nodiscard]] Bytes do_encode(const NdArray<double>& array, StageTimes* times) const override;
  [[nodiscard]] NdArray<double> do_decode(std::span<const std::byte> data) const override;

  int level_;
};

/// The paper's wavelet + quantization + encoding + gzip pipeline.
/// CompressionParams::threads (or WCK_THREADS) switches the entropy
/// stage to the sharded parallel deflate engine, so CheckpointManager
/// and DistributedClimate checkpoints scale with cores through this
/// codec without further plumbing.
class WaveletLossyCodec final : public Codec {
 public:
  explicit WaveletLossyCodec(CompressionParams params = {})
      : compressor_(std::move(params)) {}
  [[nodiscard]] std::string name() const override { return "wavelet-lossy"; }
  [[nodiscard]] bool lossy() const override { return true; }

  [[nodiscard]] const CompressionParams& params() const noexcept {
    return compressor_.params();
  }

 private:
  [[nodiscard]] Bytes do_encode(const NdArray<double>& array, StageTimes* times) const override;
  [[nodiscard]] NdArray<double> do_decode(std::span<const std::byte> data) const override;

  WaveletCompressor compressor_;
};

/// FPC-style predictive lossless compression (src/fpc) — the paper's
/// related-work comparator [17] for FP checkpoint data.
class FpcCodec final : public Codec {
 public:
  explicit FpcCodec(int table_log2 = 16) : table_log2_(table_log2) {}
  [[nodiscard]] std::string name() const override { return "fpc"; }
  [[nodiscard]] bool lossy() const override { return false; }

 private:
  [[nodiscard]] Bytes do_encode(const NdArray<double>& array, StageTimes* times) const override;
  [[nodiscard]] NdArray<double> do_decode(std::span<const std::byte> data) const override;

  int table_log2_;
};

/// SZ-style error-bounded lossy compression (src/szlike): Lorenzo
/// prediction + residual quantization, guaranteeing a pointwise
/// absolute error bound — the related-work family ([31][32]) the SZ
/// line later standardized.
class SzLikeCodec final : public Codec {
 public:
  explicit SzLikeCodec(double error_bound = 1e-3) : error_bound_(error_bound) {}
  [[nodiscard]] std::string name() const override { return "szlike"; }
  [[nodiscard]] bool lossy() const override { return true; }

  [[nodiscard]] double error_bound() const noexcept { return error_bound_; }

 private:
  [[nodiscard]] Bytes do_encode(const NdArray<double>& array, StageTimes* times) const override;
  [[nodiscard]] NdArray<double> do_decode(std::span<const std::byte> data) const override;

  double error_bound_;
};

/// ZFP-inspired block-transform lossy compression (src/zfplike): block
/// floating point + integer lifting, fixed block-relative precision.
class ZfpLikeCodec final : public Codec {
 public:
  explicit ZfpLikeCodec(int precision = 20) : precision_(precision) {}
  [[nodiscard]] std::string name() const override { return "zfplike"; }
  [[nodiscard]] bool lossy() const override { return true; }

 private:
  [[nodiscard]] Bytes do_encode(const NdArray<double>& array, StageTimes* times) const override;
  [[nodiscard]] NdArray<double> do_decode(std::span<const std::byte> data) const override;

  int precision_;
};

/// Mantissa-truncation lossy baseline (src/core/truncation): bounds the
/// pointwise relative error at 2^-kept but ignores spatial structure.
class TruncationCodec final : public Codec {
 public:
  explicit TruncationCodec(int keep_mantissa_bits = 20, int deflate_level = 6)
      : keep_(keep_mantissa_bits), level_(deflate_level) {}
  [[nodiscard]] std::string name() const override { return "truncation"; }
  [[nodiscard]] bool lossy() const override { return true; }

 private:
  [[nodiscard]] Bytes do_encode(const NdArray<double>& array, StageTimes* times) const override;
  [[nodiscard]] NdArray<double> do_decode(std::span<const std::byte> data) const override;

  int keep_;
  int level_;
};

/// Returns a decoder instance for a codec name recorded in a checkpoint
/// file (decoding never needs encode-side parameters). Throws
/// FormatError for unknown names.
[[nodiscard]] const Codec& codec_for_decoding(std::string_view name);

}  // namespace wck
