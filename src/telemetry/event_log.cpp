#include "telemetry/event_log.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "telemetry/json.hpp"

namespace wck::telemetry {

const char* event_kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kCkptBegin: return "ckpt.begin";
    case EventKind::kCkptCommit: return "ckpt.commit";
    case EventKind::kCkptRetry: return "ckpt.retry";
    case EventKind::kCkptGiveup: return "ckpt.giveup";
    case EventKind::kCkptRotate: return "ckpt.rotate";
    case EventKind::kRestoreBegin: return "restore.begin";
    case EventKind::kRestoreFallback: return "restore.fallback";
    case EventKind::kRestoreDone: return "restore.done";
    case EventKind::kRestoreParity: return "restore.parity";
    case EventKind::kRestoreFailed: return "restore.failed";
    case EventKind::kScrubCorrupt: return "scrub.corrupt";
    case EventKind::kFaultInjected: return "fault.injected";
    case EventKind::kQueueBlock: return "queue.block";
    case EventKind::kQueueDropOldest: return "queue.drop_oldest";
    case EventKind::kQueueRejectNewest: return "queue.reject_newest";
    case EventKind::kWriterUnhealthy: return "writer.unhealthy";
    case EventKind::kSoakCycle: return "soak.cycle";
    case EventKind::kSoakVerifyFailed: return "soak.verify_failed";
    case EventKind::kQuotaRejected: return "quota.rejected";
    case EventKind::kServerStart: return "server.start";
    case EventKind::kServerStop: return "server.stop";
    case EventKind::kServerConnect: return "server.connect";
    case EventKind::kServerDisconnect: return "server.disconnect";
    case EventKind::kServerBusy: return "server.busy";
    case EventKind::kTmpSwept: return "ckpt.tmp_swept";
    case EventKind::kServerRecovery: return "server.recovery";
    case EventKind::kServerTimeout: return "server.timeout";
    case EventKind::kServerDrain: return "server.drain";
    case EventKind::kClientRetry: return "client.retry";
    case EventKind::kServerSlowRequest: return "server.slow_request";
    case EventKind::kClientSlowRequest: return "client.slow_request";
  }
  return "unknown";
}

EventLog::EventLog(std::size_t capacity) : capacity_(std::max<std::size_t>(capacity, 1)) {
  ring_.reserve(std::min<std::size_t>(capacity_, 64));
}

void EventLog::record(EventKind kind, std::uint64_t step, std::string detail) {
  const auto now = std::chrono::steady_clock::now();
  MutexLock lk(mu_);
  Event e;
  e.seq = total_;
  e.t_us = std::chrono::duration<double, std::micro>(now - epoch_).count();
  e.kind = kind;
  e.step = step;
  e.detail = std::move(detail);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
  } else {
    ring_[total_ % capacity_] = std::move(e);
  }
  ++total_;
}

std::vector<Event> EventLog::snapshot() const {
  MutexLock lk(mu_);
  std::vector<Event> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // Ring is full: the oldest live event sits at the next write slot.
    const std::size_t head = total_ % capacity_;
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(head + i) % capacity_]);
    }
  }
  return out;
}

std::uint64_t EventLog::total() const {
  MutexLock lk(mu_);
  return total_;
}

std::uint64_t EventLog::dropped() const {
  MutexLock lk(mu_);
  return total_ > capacity_ ? total_ - capacity_ : 0;
}

void EventLog::clear() {
  MutexLock lk(mu_);
  ring_.clear();
}

std::string event_to_json(const Event& e) {
  std::string out = "{\"seq\":";
  out += json_number(static_cast<double>(e.seq));
  out += ",\"t_us\":";
  out += json_number(e.t_us);
  out += ",\"kind\":";
  out += json_quote(event_kind_name(e.kind));
  out += ",\"step\":";
  out += json_number(static_cast<double>(e.step));
  out += ",\"detail\":";
  out += json_quote(e.detail);
  out += "}";
  return out;
}

std::string EventLog::to_jsonl(std::size_t max_events) const {
  std::vector<Event> events = snapshot();
  if (max_events != 0 && events.size() > max_events) {
    events.erase(events.begin(),
                 events.begin() + static_cast<std::ptrdiff_t>(events.size() - max_events));
  }
  std::string out;
  for (const Event& e : events) {
    out += event_to_json(e);
    out.push_back('\n');
  }
  return out;
}

std::string EventLog::to_jsonl_for(std::initializer_list<EventKind> kinds,
                                   std::size_t max_events) const {
  std::vector<Event> events = snapshot();
  events.erase(std::remove_if(events.begin(), events.end(),
                              [&](const Event& e) {
                                return std::find(kinds.begin(), kinds.end(), e.kind) ==
                                       kinds.end();
                              }),
               events.end());
  if (max_events != 0 && events.size() > max_events) {
    events.erase(events.begin(),
                 events.begin() + static_cast<std::ptrdiff_t>(events.size() - max_events));
  }
  std::string out;
  for (const Event& e : events) {
    out += event_to_json(e);
    out.push_back('\n');
  }
  return out;
}

void EventLog::dump_to_file(const std::string& path, std::size_t max_events) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("event log: cannot open " + path + " for writing");
  const std::string text = to_jsonl(max_events);
  f.write(text.data(), static_cast<std::streamsize>(text.size()));
  f.flush();
  if (!f) throw std::runtime_error("event log: write failed for " + path);
}

EventLog& EventLog::global() {
  // Leaked intentionally: instrumented code may emit events from
  // detached threads during static destruction.
  static auto* log = new EventLog();
  return *log;
}

}  // namespace wck::telemetry
