#include "telemetry/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace wck::telemetry {
namespace {

[[noreturn]] void fail(const std::string& what) { throw std::runtime_error("json: " + what); }

}  // namespace

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) fail("value is not a bool");
  return bool_;
}

double Json::as_number() const {
  if (kind_ != Kind::kNumber) fail("value is not a number");
  return num_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) fail("value is not a string");
  return str_;
}

const Json::Array& Json::as_array() const {
  if (kind_ != Kind::kArray) fail("value is not an array");
  return arr_;
}

const Json::Object& Json::as_object() const {
  if (kind_ != Kind::kObject) fail("value is not an object");
  return obj_;
}

Json::Array& Json::as_array() {
  if (kind_ != Kind::kArray) fail("value is not an array");
  return arr_;
}

Json::Object& Json::as_object() {
  if (kind_ != Kind::kObject) fail("value is not an object");
  return obj_;
}

const Json* Json::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = obj_.find(std::string(key));
  return it == obj_.end() ? nullptr : &it->second;
}

const Json& Json::at(std::string_view key) const {
  const Json* v = find(key);
  if (v == nullptr) fail("missing key " + std::string(key));
  return *v;
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  // Integers (the common case for counters/bytes) print without a
  // fraction; everything else uses max_digits10 for exact round-trip.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void Json::write(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent < 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(d), ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: out += json_number(num_); break;
    case Kind::kString: out += json_quote(str_); break;
    case Kind::kArray: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      bool first = true;
      for (const Json& v : arr_) {
        if (!first) out.push_back(',');
        first = false;
        newline(depth + 1);
        v.write(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out.push_back(',');
        first = false;
        newline(depth + 1);
        out += json_quote(k);
        out.push_back(':');
        if (indent >= 0) out.push_back(' ');
        v.write(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing bytes");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return object();
      case '[': return array();
      case '"': return Json(string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json();
      default: return number();
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number " + tok);
    return Json(v);
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4U;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // Telemetry strings are ASCII; encode BMP code points as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0U | (code >> 6U)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          } else {
            out.push_back(static_cast<char>(0xE0U | (code >> 12U)));
            out.push_back(static_cast<char>(0x80U | ((code >> 6U) & 0x3FU)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  /// RAII nesting guard: containers deeper than kMaxParseDepth fail
  /// instead of recursing toward stack exhaustion.
  struct DepthGuard {
    explicit DepthGuard(Parser& p) : parser(p) {
      if (++parser.depth_ > Json::kMaxParseDepth) parser.fail("nesting too deep");
    }
    ~DepthGuard() { --parser.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    Parser& parser;
  };

  Json array() {
    const DepthGuard guard(*this);
    expect('[');
    Json::Array out;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(out));
    }
    for (;;) {
      out.push_back(value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return Json(std::move(out));
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  Json object() {
    const DepthGuard guard(*this);
    expect('{');
    Json::Object out;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(out));
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      out[std::move(key)] = value();
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return Json(std::move(out));
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).run(); }

}  // namespace wck::telemetry
