// Umbrella header for the telemetry subsystem (see TOOLING.md,
// "Telemetry"):
//
//   WCK_COUNTER_ADD("ckpt.crc_failures", 1);
//   WCK_GAUGE_SET("ckpt.async.queue_depth", depth);
//   WCK_HISTOGRAM_RECORD("stage.wavelet.seconds", dt);
//   WCK_TRACE_SPAN("wavelet");           // RAII scope span
//   WCK_EVENT(kCkptCommit, step, "gen ckpt.7.wck");  // flight recorder
//
// Everything is process-global, thread-safe, and disabled as a whole by
// WCK_TELEMETRY=off in the environment. RunReport snapshots the metrics
// registry + tracer into the schema-versioned JSON document that the
// wckpt CLI and the bench harness emit.
#pragma once

#include "telemetry/event_log.hpp"   // IWYU pragma: export
#include "telemetry/exposition.hpp"  // IWYU pragma: export
#include "telemetry/json.hpp"        // IWYU pragma: export
#include "telemetry/metrics.hpp"     // IWYU pragma: export
#include "telemetry/run_report.hpp"  // IWYU pragma: export
#include "telemetry/trace.hpp"       // IWYU pragma: export
