#include "telemetry/exposition.hpp"

#include <cmath>
#include <fstream>

#include "telemetry/event_log.hpp"
#include "telemetry/json.hpp"

namespace wck::telemetry {
namespace {

bool is_prom_char(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
         c == '_';
}

void append_sample(std::string& out, const std::string& name, double value) {
  out += name;
  out.push_back(' ');
  // Prometheus accepts +Inf/-Inf/NaN spellings, unlike JSON.
  if (std::isfinite(value)) {
    out += json_number(value);
  } else if (std::isnan(value)) {
    out += "NaN";
  } else {
    out += value > 0 ? "+Inf" : "-Inf";
  }
  out.push_back('\n');
}

bool write_file_best_effort(const std::filesystem::path& path, const std::string& text) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f.write(text.data(), static_cast<std::streamsize>(text.size()));
  f.flush();
  return static_cast<bool>(f);
}

}  // namespace

std::string prometheus_name(std::string_view metric) {
  std::string out = "wck_";
  out.reserve(out.size() + metric.size());
  for (const char c : metric) out.push_back(is_prom_char(c) ? c : '_');
  return out;
}

std::string prometheus_text(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [metric, value] : snapshot.counters) {
    const std::string name = prometheus_name(metric);
    out += "# TYPE " + name + " counter\n";
    append_sample(out, name, static_cast<double>(value));
  }
  for (const auto& [metric, value] : snapshot.gauges) {
    const std::string name = prometheus_name(metric);
    out += "# TYPE " + name + " gauge\n";
    append_sample(out, name, value);
  }
  for (const auto& [metric, h] : snapshot.histograms) {
    const std::string name = prometheus_name(metric);
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      const std::string le =
          i < h.bounds.size() ? json_number(h.bounds[i]) : std::string("+Inf");
      out += name + "_bucket{le=\"" + le + "\"} " + std::to_string(cumulative) + "\n";
    }
    out += name + "_sum " + json_number(h.sum) + "\n";
    out += name + "_count " + std::to_string(h.count) + "\n";
    // Quantile estimates as companion gauges: a histogram TYPE must not
    // carry {quantile=...} series, so they get their own names.
    for (const auto& [suffix, q] :
         {std::pair<const char*, double>{"_p50", h.p50}, {"_p95", h.p95}, {"_p99", h.p99}}) {
      const std::string qname = name + suffix;
      out += "# TYPE " + qname + " gauge\n";
      append_sample(out, qname, q);
    }
  }
  return out;
}

bool write_exposition_snapshot(const std::filesystem::path& dir, std::size_t event_tail) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort; writes report
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  bool ok = write_file_best_effort(dir / "metrics.prom", prometheus_text(snap));
  ok = write_file_best_effort(dir / "events.jsonl",
                              EventLog::global().to_jsonl(event_tail)) &&
       ok;
  ok = write_file_best_effort(
           dir / "slow-requests.jsonl",
           EventLog::global().to_jsonl_for(
               {EventKind::kServerSlowRequest, EventKind::kClientSlowRequest})) &&
       ok;
  return ok;
}

PeriodicSnapshotWriter::PeriodicSnapshotWriter(std::filesystem::path dir, Options options)
    : dir_(std::move(dir)), options_(options) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // best effort; write_once reports
}

PeriodicSnapshotWriter::~PeriodicSnapshotWriter() { stop(); }

bool PeriodicSnapshotWriter::write_once() {
  const bool ok = write_exposition_snapshot(dir_, options_.event_tail);
  writes_.fetch_add(1, std::memory_order_relaxed);
  return ok;
}

void PeriodicSnapshotWriter::start() {
  MutexLock lk(mu_);
  if (started_) return;
  started_ = true;
  stopping_ = false;
  thread_ = std::thread([this] { run(); });
}

void PeriodicSnapshotWriter::stop() {
  // Claim the thread handle under the lock and join the local copy:
  // with the handle itself guarded, two racing stop() calls can never
  // both reach join() on the same std::thread (which is undefined
  // behavior). The loser of the race sees started_ == false and leaves
  // the final dump to the winner.
  std::thread claimed;
  {
    MutexLock lk(mu_);
    if (!started_) return;
    started_ = false;
    stopping_ = true;
    claimed = std::move(thread_);
  }
  cv_.notify_all();
  if (claimed.joinable()) claimed.join();
  write_once();  // final state dump
}

void PeriodicSnapshotWriter::run() {
  MutexLock lk(mu_);
  while (!stopping_) {
    // Wait first so a stop() right after start() skips the initial dump
    // race; stop() performs the final write.
    if (cv_.wait_for(lk, options_.interval, [this] {
          mu_.assert_held();
          return stopping_;
        })) {
      break;
    }
    lk.unlock();
    write_once();
    lk.lock();
  }
}

}  // namespace wck::telemetry
