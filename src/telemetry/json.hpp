// Minimal JSON document model used by the telemetry subsystem: the
// RunReport / BENCH_*.json / chrome-trace emitters need a writer, and
// the round-trip tests plus the C++ report validator need a parser.
// Deliberately small (objects keep sorted key order via std::map, which
// also makes emitted reports byte-stable for a given input).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace wck::telemetry {

/// A parsed/buildable JSON value (null, bool, number, string, array,
/// object). Numbers are always double — the telemetry schema never
/// needs integers beyond 2^53.
class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() noexcept : kind_(Kind::kNull) {}
  Json(bool b) noexcept : kind_(Kind::kBool), bool_(b) {}  // NOLINT(google-explicit-constructor)
  Json(double v) noexcept : kind_(Kind::kNumber), num_(v) {}  // NOLINT(google-explicit-constructor)
  Json(int v) noexcept : Json(static_cast<double>(v)) {}  // NOLINT(google-explicit-constructor)
  Json(std::uint64_t v) noexcept : Json(static_cast<double>(v)) {}  // NOLINT(google-explicit-constructor)
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}  // NOLINT(google-explicit-constructor)
  Json(const char* s) : Json(std::string(s)) {}  // NOLINT(google-explicit-constructor)
  Json(Array a) : kind_(Kind::kArray), arr_(std::move(a)) {}  // NOLINT(google-explicit-constructor)
  Json(Object o) : kind_(Kind::kObject), obj_(std::move(o)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::kObject; }

  /// Typed accessors; throw FormatError-compatible std::runtime_error on
  /// kind mismatch (the telemetry layer must not depend on util/error).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] Object& as_object();

  /// Object lookup: returns nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;
  /// Object lookup that throws when the key is missing.
  [[nodiscard]] const Json& at(std::string_view key) const;

  /// Serializes compactly ("{"a":1}") or, with indent >= 0, pretty-
  /// printed with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Maximum container nesting depth parse() accepts. The parser is
  /// recursive; the cap keeps hostile inputs (telemetry files are
  /// attacker-adjacent once they cross a filesystem) from overflowing
  /// the stack.
  static constexpr int kMaxParseDepth = 96;

  /// Parses a complete JSON document; throws std::runtime_error with a
  /// byte offset on malformed input, trailing garbage, or nesting
  /// deeper than kMaxParseDepth. Duplicate object keys are accepted
  /// with last-one-wins semantics (documented, tested). Non-finite
  /// numbers cannot be parsed back — dump() serializes them as null.
  [[nodiscard]] static Json parse(std::string_view text);

 private:
  void write(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Escapes a string into a JSON string literal (with quotes).
[[nodiscard]] std::string json_quote(std::string_view s);

/// Formats a double the way Json::dump does (shortest round-trippable).
[[nodiscard]] std::string json_number(double v);

}  // namespace wck::telemetry
