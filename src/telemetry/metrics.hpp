// Process-wide metrics: named counters, gauges, and fixed-bucket
// histograms with a lock-free record path (plain atomics, safe under
// the TSan preset). Registration/lookup takes a mutex and may allocate;
// the returned references are stable for the registry's lifetime, so
// hot paths resolve a metric once (function-local static) and then only
// touch atomics.
//
// The whole subsystem is disabled by WCK_TELEMETRY=off in the
// environment (or telemetry::set_enabled(false)); the WCK_* macros
// below then skip even the lookup, so a disabled build performs no
// allocation and no atomic traffic on instrumented paths.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.hpp"

namespace wck::telemetry {

/// True unless WCK_TELEMETRY=off/0/false in the environment or
/// set_enabled(false) was called. Single relaxed atomic load.
[[nodiscard]] bool enabled() noexcept;

/// Runtime override (tests, CLI --no-telemetry); wins over the env var.
void set_enabled(bool on) noexcept;

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written level (queue depth, bytes in flight, ...).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double v) noexcept { value_.fetch_add(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket bounds are upper edges; one overflow
/// bucket catches everything above the last bound. record() is
/// allocation-free and lock-free (bounded linear scan + atomic adds).
class Histogram {
 public:
  /// Default bounds: log-spaced seconds from 1 us to ~100 s, suitable
  /// for every duration metric in this codebase.
  static std::span<const double> default_seconds_bounds() noexcept;

  explicit Histogram(std::span<const double> upper_bounds = default_seconds_bounds());

  void record(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// bucket_counts()[i] counts samples <= bounds()[i]; the final entry
  /// (index bounds().size()) is the overflow bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  /// Bucket-interpolated quantile estimate (q in [0, 1]): linear
  /// interpolation inside the bucket holding the q-th sample, clamped to
  /// the observed [min, max]. Returns 0 for an empty histogram.
  [[nodiscard]] double quantile(double q) const;
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Point-in-time copy of every metric, for reports.
struct MetricsSnapshot {
  struct HistogramStats {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    /// Bucket upper edges + counts (buckets.size() == bounds.size() + 1,
    /// the final entry being the overflow bucket), so exposition can
    /// render cumulative Prometheus buckets from a snapshot alone.
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;
    /// Bucket-interpolated quantile estimates (Histogram::quantile).
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStats> histograms;
};

/// The interpolation behind Histogram::quantile, usable on snapshot data.
[[nodiscard]] double histogram_quantile(std::span<const double> bounds,
                                        std::span<const std::uint64_t> buckets,
                                        double min, double max, double q);

/// Thread-safe named-metric registry. Metrics live as long as the
/// registry; references returned by counter()/gauge()/histogram() never
/// dangle and may be cached.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name,
                       std::span<const double> bounds = Histogram::default_seconds_bounds());

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every metric (names stay registered).
  void reset();

  /// The process-wide registry all WCK_* macros record into.
  static MetricsRegistry& global();

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_ WCK_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_ WCK_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      WCK_GUARDED_BY(mu_);
};

}  // namespace wck::telemetry

// Convenience macros: resolve the metric once per call site, skip
// everything (including first-use registration) while telemetry is
// disabled. `name` must be a string literal or otherwise outlive the
// first enabled call.
#define WCK_COUNTER_ADD(name, n)                                              \
  do {                                                                        \
    if (::wck::telemetry::enabled()) {                                        \
      static ::wck::telemetry::Counter& wck_counter_ =                        \
          ::wck::telemetry::MetricsRegistry::global().counter(name);          \
      wck_counter_.add(n);                                                    \
    }                                                                         \
  } while (0)

#define WCK_GAUGE_SET(name, v)                                                \
  do {                                                                        \
    if (::wck::telemetry::enabled()) {                                        \
      static ::wck::telemetry::Gauge& wck_gauge_ =                            \
          ::wck::telemetry::MetricsRegistry::global().gauge(name);            \
      wck_gauge_.set(v);                                                      \
    }                                                                         \
  } while (0)

#define WCK_HISTOGRAM_RECORD(name, v)                                         \
  do {                                                                        \
    if (::wck::telemetry::enabled()) {                                        \
      static ::wck::telemetry::Histogram& wck_hist_ =                         \
          ::wck::telemetry::MetricsRegistry::global().histogram(name);        \
      wck_hist_.record(v);                                                    \
    }                                                                         \
  } while (0)
