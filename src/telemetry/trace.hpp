// Scoped-span tracing: WCK_TRACE_SPAN("wavelet") records the enclosing
// scope's wall time into a per-thread span stream. Streams are owned by
// the process-wide Tracer and can be exported as Chrome trace-event
// JSON (load the file at chrome://tracing or https://ui.perfetto.dev).
//
// Concurrency model: each thread appends only to its own stream under
// that stream's mutex (uncontended in steady state); snapshot/export
// locks each stream briefly. Nesting depth is tracked per thread, so
// spans opened inside other spans carry their depth for flame-style
// rendering.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"  // enabled()
#include "util/thread_annotations.hpp"

namespace wck::telemetry {

/// Cross-process trace identity, carried over the wire by the store
/// protocol (net::protocol). 0 is the "no context" sentinel everywhere:
/// a zero trace_id means the span belongs to no distributed trace, and
/// a fully-zero context encodes as *absent* on the wire, so old peers
/// and telemetry-off processes interoperate unchanged.
struct TraceContext {
  std::uint64_t trace_id = 0;         ///< one RPC tree, all processes
  std::uint64_t span_id = 0;          ///< this span within the trace
  std::uint64_t parent_span_id = 0;   ///< 0 = root span of the trace
  [[nodiscard]] bool active() const noexcept { return trace_id != 0; }
  [[nodiscard]] bool zero() const noexcept {
    return trace_id == 0 && span_id == 0 && parent_span_id == 0;
  }
  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

/// Process-unique nonzero span/trace id: an atomic counter mixed over a
/// per-process base (clock ⊕ ASLR'd address), so two processes that
/// trace the same RPC tree almost surely draw from disjoint id streams.
[[nodiscard]] std::uint64_t next_span_id() noexcept;

/// The calling thread's ambient trace context (set by an RPC-boundary
/// TraceSpan for its lifetime); zero outside any traced RPC.
[[nodiscard]] TraceContext current_trace_context() noexcept;

/// 16-digit lowercase hex rendering of a trace/span id, the stable
/// textual form used in chrome-trace args and slow-request log lines.
[[nodiscard]] std::string trace_id_hex(std::uint64_t id);

/// One completed span.
struct SpanRecord {
  std::string name;
  double start_us = 0.0;  ///< microseconds since process trace epoch
  double dur_us = 0.0;
  std::uint32_t depth = 0;  ///< 0 = outermost span on that thread
  std::uint32_t tid = 0;    ///< dense per-process thread index
  /// Distributed-trace identity; all zero for spans recorded outside a
  /// traced RPC. Interior spans carry the ambient trace_id (and the
  /// enclosing RPC span as parent) so a merged timeline can attribute
  /// them without each one drawing its own id.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Microseconds since this tracer's epoch (steady clock).
  [[nodiscard]] double now_us() const noexcept;

  /// Appends a completed span to the calling thread's stream.
  void record(std::string name, double start_us, double dur_us, std::uint32_t depth);

  /// Same, with an explicit distributed-trace identity on the span.
  void record(std::string name, double start_us, double dur_us, std::uint32_t depth,
              const TraceContext& ctx);

  /// Enters/leaves a nesting level on the calling thread; returns the
  /// depth the span runs at.
  std::uint32_t enter();
  void leave();

  /// All spans from all threads, ordered by (tid, start).
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;

  /// Total spans recorded so far.
  [[nodiscard]] std::size_t span_count() const;

  /// Drops all recorded spans (streams stay registered).
  void clear();

  /// Chrome trace-event JSON ("X" complete events, one row per thread).
  [[nodiscard]] std::string chrome_trace_json() const;

  static Tracer& global();

 private:
  struct ThreadStream;
  ThreadStream& stream_for_this_thread();

  mutable Mutex mu_;
  std::vector<std::shared_ptr<ThreadStream>> streams_ WCK_GUARDED_BY(mu_);
  // Set once at construction, immutable after — needs no guard.
  const std::chrono::steady_clock::time_point epoch_ = std::chrono::steady_clock::now();
};

/// RAII span: measures construction-to-destruction and records it into
/// Tracer::global(). Inactive (and allocation-free) when telemetry is
/// disabled at construction time.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);

  /// RPC-boundary span: records `ctx` on the span and installs it as
  /// the thread's ambient context for the span's lifetime, so nested
  /// WCK_TRACE_SPANs inherit the trace_id. The previous ambient
  /// context is restored on destruction.
  TraceSpan(const char* name, const TraceContext& ctx);

  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  double start_us_ = 0.0;
  std::uint32_t depth_ = 0;
  bool active_ = false;
  bool scoped_ = false;     ///< true when this span swapped the ambient ctx
  TraceContext ctx_;        ///< identity recorded on this span
  TraceContext prev_;       ///< ambient context to restore
};

}  // namespace wck::telemetry

#define WCK_TRACE_CONCAT_IMPL(a, b) a##b
#define WCK_TRACE_CONCAT(a, b) WCK_TRACE_CONCAT_IMPL(a, b)
/// Records the enclosing scope as a named span on the current thread.
#define WCK_TRACE_SPAN(name) \
  ::wck::telemetry::TraceSpan WCK_TRACE_CONCAT(wck_trace_span_, __LINE__)(name)
