#include "telemetry/metrics.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <optional>

#include "util/env.hpp"

namespace wck::telemetry {
namespace {

bool env_enabled() {
  const std::optional<std::string> v = env::get("WCK_TELEMETRY");
  if (!v) return true;
  return *v != "off" && *v != "0" && *v != "false" && *v != "OFF";
}

std::atomic<bool>& enabled_flag() noexcept {
  static std::atomic<bool> flag{env_enabled()};
  return flag;
}

/// Atomically keeps dst = min/max(dst, x) via a CAS loop.
template <typename Cmp>
void atomic_extreme(std::atomic<double>& dst, double x, Cmp better) noexcept {
  double cur = dst.load(std::memory_order_relaxed);
  while (better(x, cur) &&
         !dst.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

}  // namespace

bool enabled() noexcept { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept { enabled_flag().store(on, std::memory_order_relaxed); }

std::span<const double> Histogram::default_seconds_bounds() noexcept {
  // 1 us .. 100 s, roughly x3 per bucket: covers a single haar pass on a
  // small array up to a full temp-file-gzip checkpoint.
  static constexpr std::array<double, 16> kBounds = {
      1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
      1e-2, 3e-2, 1e-1, 3e-1, 1.0,  3.0,  10.0, 100.0};
  return kBounds;
}

Histogram::Histogram(std::span<const double> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()),
      buckets_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void Histogram::record(double x) noexcept {
  std::size_t b = 0;
  while (b < bounds_.size() && x > bounds_[b]) ++b;
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(x, std::memory_order_relaxed);
  atomic_extreme(min_, x, [](double a, double c) { return a < c; });
  atomic_extreme(max_, x, [](double a, double c) { return a > c; });
}

double Histogram::min() const noexcept {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const noexcept {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double histogram_quantile(std::span<const double> bounds,
                          std::span<const std::uint64_t> buckets, double min, double max,
                          double q) {
  std::uint64_t total = 0;
  for (const std::uint64_t b : buckets) total += b;
  if (total == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the target sample (1-based), then the bucket holding it.
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const std::uint64_t below = cumulative;
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < rank) continue;
    // Interpolate inside bucket i: [lower, upper] spanned linearly by
    // its samples. Edge buckets use the observed extremes so estimates
    // never leave [min, max].
    const double lower = i == 0 ? min : std::max(bounds[i - 1], min);
    const double upper = i < bounds.size() ? std::min(bounds[i], max) : max;
    const double fraction =
        (rank - static_cast<double>(below)) / static_cast<double>(buckets[i]);
    const double v = lower + (upper - lower) * fraction;
    return std::min(std::max(v, min), max);
  }
  return max;
}

double Histogram::quantile(double q) const {
  return histogram_quantile(bounds_, bucket_counts(), min(), max(), q);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  MutexLock lk(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>()).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  MutexLock lk(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::span<const double> bounds) {
  MutexLock lk(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_.emplace(std::string(name), std::make_unique<Histogram>(bounds))
              .first->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MutexLock lk(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramStats stats{};
    stats.count = h->count();
    stats.sum = h->sum();
    stats.min = h->min();
    stats.max = h->max();
    stats.mean = h->mean();
    stats.bounds = h->bounds();
    stats.buckets = h->bucket_counts();
    stats.p50 = histogram_quantile(stats.bounds, stats.buckets, stats.min, stats.max, 0.50);
    stats.p95 = histogram_quantile(stats.bounds, stats.buckets, stats.min, stats.max, 0.95);
    stats.p99 = histogram_quantile(stats.bounds, stats.buckets, stats.min, stats.max, 0.99);
    snap.histograms[name] = std::move(stats);
  }
  return snap;
}

void MetricsRegistry::reset() {
  MutexLock lk(mu_);
  for (const auto& [_, c] : counters_) c->reset();
  for (const auto& [_, g] : gauges_) g->reset();
  for (const auto& [_, h] : histograms_) h->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked intentionally: instrumented code may record from detached
  // threads during static destruction.
  static auto* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace wck::telemetry
