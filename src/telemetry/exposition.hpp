// Metrics exposition: renders a MetricsSnapshot in the Prometheus text
// format (https://prometheus.io/docs/instrumenting/exposition_formats/)
// and runs an optional background writer that periodically dumps the
// current metrics + flight-recorder tail to a directory. There is no
// embedded HTTP server — a node-exporter-style textfile collector (or
// plain `cat`) picks the files up, which keeps the dependency surface
// at zero while still making long soak runs observable from outside the
// process.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>

#include "telemetry/metrics.hpp"
#include "util/thread_annotations.hpp"

namespace wck::telemetry {

/// Sanitizes a dotted metric name into a Prometheus metric name:
/// "ckpt.write.retries" -> "wck_ckpt_write_retries". Any character
/// outside [a-zA-Z0-9_] becomes '_'.
[[nodiscard]] std::string prometheus_name(std::string_view metric);

/// Renders the snapshot as Prometheus text exposition format v0.0.4:
/// counters and gauges as single samples, histograms as cumulative
/// `_bucket{le="..."}` series plus `_sum`/`_count`, and the
/// bucket-interpolated quantiles as separate `_p50`/`_p95`/`_p99`
/// gauges (native histogram quantile lines belong to summaries, which
/// these are not).
[[nodiscard]] std::string prometheus_text(const MetricsSnapshot& snapshot);

/// Writes one exposition snapshot of the global registry and flight
/// recorder into `dir` (created if missing):
///   <dir>/metrics.prom         — prometheus_text of the current snapshot
///   <dir>/events.jsonl         — newest flight-recorder events
///   <dir>/slow-requests.jsonl  — flight recorder filtered to the
///                                *.slow_request kinds (structured
///                                slow-request log)
/// Best-effort: returns false if any file failed to write, never
/// throws. StoreServer calls this at the end of a graceful drain so a
/// SIGTERM'd server does not lose its last --expose interval.
bool write_exposition_snapshot(const std::filesystem::path& dir, std::size_t event_tail = 0);

/// Background exposition: every `interval` the writer snapshots the
/// global registry and flight recorder and (over)writes the
/// write_exposition_snapshot() file set. Overwriting keeps the file
/// count bounded no matter how long the run is. Writes are best-effort:
/// an unwritable directory must never take down the instrumented
/// process.
class PeriodicSnapshotWriter {
 public:
  struct Options {
    std::chrono::milliseconds interval{1000};
    /// Newest events to include in events.jsonl (0 = all held).
    std::size_t event_tail = 0;
  };

  PeriodicSnapshotWriter(std::filesystem::path dir, Options options);
  ~PeriodicSnapshotWriter();

  PeriodicSnapshotWriter(const PeriodicSnapshotWriter&) = delete;
  PeriodicSnapshotWriter& operator=(const PeriodicSnapshotWriter&) = delete;

  /// Performs one snapshot+write synchronously (also called by the
  /// background loop). Returns false if either file failed to write.
  bool write_once();

  /// Starts the background thread (idempotent).
  void start();

  /// Stops the background thread promptly and performs a final
  /// write_once() so the directory reflects the end state. Safe to call
  /// concurrently and repeatedly: exactly one caller joins the thread
  /// and performs the final dump; the others return immediately.
  void stop();

  [[nodiscard]] const std::filesystem::path& dir() const noexcept { return dir_; }
  [[nodiscard]] std::uint64_t writes() const noexcept {
    return writes_.load(std::memory_order_relaxed);
  }

 private:
  void run();

  std::filesystem::path dir_;
  Options options_;
  Mutex mu_;
  CondVar cv_;
  bool stopping_ WCK_GUARDED_BY(mu_) = false;
  bool started_ WCK_GUARDED_BY(mu_) = false;
  // Guarded: stop() must move the handle out under the lock and join
  // the local copy, so two concurrent stop() calls cannot both join the
  // same std::thread (that double-join was a real defect the annotation
  // pass surfaced; see telemetry_test "StopIsConcurrencySafe").
  std::thread thread_ WCK_GUARDED_BY(mu_);
  std::atomic<std::uint64_t> writes_{0};
};

}  // namespace wck::telemetry
