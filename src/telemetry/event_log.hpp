// Checkpoint flight recorder: a bounded, thread-safe ring of structured
// lifecycle events (checkpoint begin/commit/retry/fallback, scrub
// quarantines, restore outcomes, fault injections, backpressure
// actions). Unlike metrics — which aggregate — the event log preserves
// the *sequence* of what happened, so a failed soak run can be
// reconstructed after the fact: which fault fired, which retries it
// caused, and which fallback finally satisfied the restore.
//
// Events are cheap but not free; emission goes through WCK_EVENT, which
// is compiled to nothing more than a relaxed atomic load when telemetry
// is disabled (WCK_TELEMETRY=off), matching the metrics macros.
#pragma once

#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"  // enabled()
#include "util/thread_annotations.hpp"

namespace wck::telemetry {

/// Lifecycle event categories. Names (see event_kind_name) are part of
/// the JSONL schema; append new kinds at the end, never reorder.
enum class EventKind : std::uint8_t {
  kCkptBegin,          ///< manager started serializing a checkpoint
  kCkptCommit,         ///< generation durably committed
  kCkptRetry,          ///< transient write failure, retrying
  kCkptGiveup,         ///< retry budget exhausted, commit failed
  kCkptRotate,         ///< old generation rotated out
  kRestoreBegin,       ///< restore chain started
  kRestoreFallback,    ///< newest generation unusable, trying older
  kRestoreDone,        ///< restore satisfied (detail = source)
  kRestoreParity,      ///< restore reconstructed from XOR parity
  kRestoreFailed,      ///< no restorable generation anywhere
  kScrubCorrupt,       ///< scrub quarantined a corrupt generation
  kFaultInjected,      ///< fault-injection backend fired a planned fault
  kQueueBlock,         ///< async writer blocked the producer (backpressure)
  kQueueDropOldest,    ///< async writer dropped the oldest queued request
  kQueueRejectNewest,  ///< async writer rejected the incoming request
  kWriterUnhealthy,    ///< async writer entered fail-fast state
  kSoakCycle,          ///< soak loop finished one mutate/commit cycle
  kSoakVerifyFailed,   ///< soak loop detected state divergence
  kQuotaRejected,      ///< write rejected: byte quota would be exceeded
  kServerStart,        ///< checkpoint store server began listening
  kServerStop,         ///< checkpoint store server shut down
  kServerConnect,      ///< store server accepted a client connection
  kServerDisconnect,   ///< store client connection closed
  kServerBusy,         ///< admission control rejected a request (Busy)
  kTmpSwept,           ///< stale commit temp file removed at open
  kServerRecovery,     ///< store service rebuilt a tenant at startup
  kServerTimeout,      ///< connection deadline expired (idle/read/write)
  kServerDrain,        ///< graceful drain started / finished
  kClientRetry,        ///< store client retried a connect or request
  kServerSlowRequest,  ///< RPC exceeded the server slow-request threshold
  kClientSlowRequest,  ///< RPC exceeded the client slow-request threshold
};

/// Stable dotted name for a kind ("ckpt.commit", "fault.injected", ...).
[[nodiscard]] const char* event_kind_name(EventKind kind) noexcept;

/// One recorded lifecycle event.
struct Event {
  std::uint64_t seq = 0;   ///< monotonic per-log sequence number
  double t_us = 0.0;       ///< microseconds since the log's epoch (steady clock)
  EventKind kind = EventKind::kCkptBegin;
  std::uint64_t step = 0;  ///< checkpoint step / cycle number; 0 if n/a
  std::string detail;      ///< free-form context ("attempt 2/5", path, ...)
};

/// Bounded ring of events. When full, the oldest event is overwritten
/// and `dropped()` grows — a flight recorder keeps the most *recent*
/// history, which is what post-mortems need.
class EventLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;

  explicit EventLog(std::size_t capacity = kDefaultCapacity);
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Appends an event; assigns its seq and timestamp.
  void record(EventKind kind, std::uint64_t step = 0, std::string detail = {});

  /// Events currently held, oldest first.
  [[nodiscard]] std::vector<Event> snapshot() const;

  /// Total events ever recorded (including overwritten ones).
  [[nodiscard]] std::uint64_t total() const;
  /// Events lost to ring overwrite: total() - min(total, capacity).
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Drops all held events; seq numbering and the epoch continue.
  void clear();

  /// One JSON object per line, oldest first:
  ///   {"seq":3,"t_us":12.5,"kind":"ckpt.retry","step":7,"detail":"attempt 2/5"}
  /// Only the newest `max_events` lines when nonzero.
  [[nodiscard]] std::string to_jsonl(std::size_t max_events = 0) const;

  /// Like to_jsonl(), but keeps only events whose kind is in `kinds`
  /// (the slow-request log is the ring filtered to *.slow_request).
  [[nodiscard]] std::string to_jsonl_for(std::initializer_list<EventKind> kinds,
                                         std::size_t max_events = 0) const;

  /// Writes to_jsonl() to `path`; throws std::runtime_error on failure.
  void dump_to_file(const std::string& path, std::size_t max_events = 0) const;

  /// Process-wide recorder used by WCK_EVENT (leaked intentionally,
  /// like MetricsRegistry::global()).
  static EventLog& global();

 private:
  const std::size_t capacity_;
  mutable Mutex mu_;
  // ring_[total_ % capacity_] is the next slot
  std::vector<Event> ring_ WCK_GUARDED_BY(mu_);
  std::uint64_t total_ WCK_GUARDED_BY(mu_) = 0;
  // Set once at construction, immutable after — needs no guard.
  const std::chrono::steady_clock::time_point epoch_ = std::chrono::steady_clock::now();
};

/// Renders one event as a compact JSON object (no trailing newline).
[[nodiscard]] std::string event_to_json(const Event& e);

}  // namespace wck::telemetry

/// Records a lifecycle event into the global flight recorder. Arguments
/// are not evaluated when telemetry is disabled.
#define WCK_EVENT(kind, step, detail)                                    \
  do {                                                                   \
    if (::wck::telemetry::enabled()) {                                   \
      ::wck::telemetry::EventLog::global().record(                       \
          ::wck::telemetry::EventKind::kind,                             \
          static_cast<std::uint64_t>(step), (detail));                   \
    }                                                                    \
  } while (false)
