// RunReport: one schema-versioned JSON document per run that snapshots
// everything the paper's evaluation reports — per-stage durations
// (Fig. 9), compression rate (Figs. 6-7), error metrics (Figs. 8/10) —
// plus the full metrics registry and span stream totals. The wckpt CLI
// (--telemetry / --json), the bench harness (BENCH_*.json), and the CI
// bench-smoke validator all speak this schema.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"

namespace wck::telemetry {

/// Error metrics mirror of stats/ErrorStats (plain doubles so the
/// telemetry layer stays dependency-free; call sites copy fields over).
struct ErrorSummary {
  double mean_rel = 0.0;
  double max_rel = 0.0;
  double max_abs = 0.0;
  double rmse = 0.0;
  double psnr = 0.0;  ///< dB; +inf (exact) serializes as JSON null
  std::uint64_t count = 0;
};

struct RunReport {
  /// Bump on any incompatible field change; consumers must check it.
  static constexpr int kSchemaVersion = 1;
  static constexpr const char* kSchemaName = "wck-run-report";

  std::string tool;                            ///< e.g. "wckpt compress"
  std::map<std::string, std::string> params;   ///< codec/shape/flags
  std::map<std::string, double> stages_seconds;  ///< "wavelet", "quantize", ...
  std::uint64_t original_bytes = 0;
  std::uint64_t compressed_bytes = 0;
  std::uint64_t payload_bytes = 0;
  ErrorSummary error;
  bool has_error_metrics = false;
  MetricsSnapshot metrics;
  std::uint64_t span_count = 0;
  /// Optional quality-observability section (schema-versioned
  /// "wck-quality-report" document built by src/quality — the telemetry
  /// layer carries it opaquely so it stays dependency-free). Null when
  /// absent.
  Json quality;

  /// Eq. 5 (percent of original size; lower is better).
  [[nodiscard]] double compression_rate_percent() const noexcept {
    return original_bytes == 0 ? 0.0
                               : 100.0 * static_cast<double>(compressed_bytes) /
                                     static_cast<double>(original_bytes);
  }

  /// Fills stages_seconds / metrics / span_count from the global
  /// registry and tracer. Stage durations are the sums of every
  /// "stage.<name>.seconds" histogram.
  void capture_global();

  [[nodiscard]] Json to_json() const;
  [[nodiscard]] std::string to_json_text(int indent = 1) const;
  [[nodiscard]] static RunReport from_json(const Json& doc);

  /// Human-readable rendering of the same data (the CLI text path).
  [[nodiscard]] std::string to_text() const;
};

/// Writes `text` to `path`; throws std::runtime_error on I/O failure.
void write_text_file(const std::string& path, const std::string& text);

}  // namespace wck::telemetry
