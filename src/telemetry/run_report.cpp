#include "telemetry/run_report.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "telemetry/trace.hpp"

namespace wck::telemetry {
namespace {

constexpr const char* kStagePrefix = "stage.";
constexpr const char* kStageSuffix = ".seconds";

/// "stage.wavelet.seconds" -> "wavelet"; empty when not a stage metric.
std::string stage_name_of(const std::string& metric) {
  const std::string prefix(kStagePrefix);
  const std::string suffix(kStageSuffix);
  if (metric.size() <= prefix.size() + suffix.size()) return {};
  if (metric.compare(0, prefix.size(), prefix) != 0) return {};
  if (metric.compare(metric.size() - suffix.size(), suffix.size(), suffix) != 0) return {};
  return metric.substr(prefix.size(), metric.size() - prefix.size() - suffix.size());
}

Json histogram_json(const MetricsSnapshot::HistogramStats& h) {
  Json::Object o;
  o["count"] = static_cast<double>(h.count);
  o["sum"] = h.sum;
  o["min"] = h.min;
  o["max"] = h.max;
  o["mean"] = h.mean;
  o["p50"] = h.p50;
  o["p95"] = h.p95;
  o["p99"] = h.p99;
  return Json(std::move(o));
}

MetricsSnapshot::HistogramStats histogram_from_json(const Json& j) {
  MetricsSnapshot::HistogramStats h;
  h.count = static_cast<std::uint64_t>(j.at("count").as_number());
  h.sum = j.at("sum").as_number();
  h.min = j.at("min").as_number();
  h.max = j.at("max").as_number();
  h.mean = j.at("mean").as_number();
  // Quantiles are additive (v1 reports written before them lack the
  // keys); tolerate their absence for round-tripping old artifacts.
  if (const Json* p = j.find("p50")) h.p50 = p->as_number();
  if (const Json* p = j.find("p95")) h.p95 = p->as_number();
  if (const Json* p = j.find("p99")) h.p99 = p->as_number();
  return h;
}

/// Non-finite doubles (ErrorSummary::psnr on exact reconstruction) have
/// no JSON number form; the schema represents them as null.
Json finite_or_null(double v) {
  return std::isfinite(v) ? Json(v) : Json();
}

}  // namespace

void RunReport::capture_global() {
  metrics = MetricsRegistry::global().snapshot();
  span_count = Tracer::global().span_count();
  for (const auto& [name, h] : metrics.histograms) {
    const std::string stage = stage_name_of(name);
    if (!stage.empty()) stages_seconds[stage] = h.sum;
  }
}

Json RunReport::to_json() const {
  Json::Object doc;
  doc["schema"] = kSchemaName;
  doc["schema_version"] = kSchemaVersion;
  doc["tool"] = tool;

  Json::Object params_o;
  for (const auto& [k, v] : params) params_o[k] = v;
  doc["params"] = std::move(params_o);

  Json::Object stages_o;
  for (const auto& [k, v] : stages_seconds) stages_o[k] = v;
  doc["stages_seconds"] = std::move(stages_o);

  Json::Object bytes_o;
  bytes_o["original"] = static_cast<double>(original_bytes);
  bytes_o["compressed"] = static_cast<double>(compressed_bytes);
  bytes_o["payload"] = static_cast<double>(payload_bytes);
  doc["bytes"] = std::move(bytes_o);
  doc["compression_rate_percent"] = compression_rate_percent();

  if (has_error_metrics) {
    Json::Object err_o;
    err_o["mean_rel"] = error.mean_rel;
    err_o["max_rel"] = error.max_rel;
    err_o["max_abs"] = error.max_abs;
    err_o["rmse"] = error.rmse;
    err_o["psnr"] = finite_or_null(error.psnr);
    err_o["count"] = static_cast<double>(error.count);
    doc["error"] = std::move(err_o);
  }

  Json::Object counters_o;
  for (const auto& [k, v] : metrics.counters) counters_o[k] = static_cast<double>(v);
  Json::Object gauges_o;
  for (const auto& [k, v] : metrics.gauges) gauges_o[k] = v;
  Json::Object hists_o;
  for (const auto& [k, v] : metrics.histograms) hists_o[k] = histogram_json(v);
  Json::Object metrics_o;
  metrics_o["counters"] = std::move(counters_o);
  metrics_o["gauges"] = std::move(gauges_o);
  metrics_o["histograms"] = std::move(hists_o);
  doc["metrics"] = std::move(metrics_o);

  doc["span_count"] = static_cast<double>(span_count);
  if (!quality.is_null()) doc["quality"] = quality;
  return Json(std::move(doc));
}

std::string RunReport::to_json_text(int indent) const { return to_json().dump(indent); }

RunReport RunReport::from_json(const Json& doc) {
  if (doc.at("schema").as_string() != kSchemaName) {
    throw std::runtime_error("run report: unexpected schema " + doc.at("schema").as_string());
  }
  const int version = static_cast<int>(doc.at("schema_version").as_number());
  if (version != kSchemaVersion) {
    throw std::runtime_error("run report: unsupported schema version " +
                             std::to_string(version));
  }

  RunReport r;
  r.tool = doc.at("tool").as_string();
  for (const auto& [k, v] : doc.at("params").as_object()) r.params[k] = v.as_string();
  for (const auto& [k, v] : doc.at("stages_seconds").as_object()) {
    r.stages_seconds[k] = v.as_number();
  }
  const Json& bytes = doc.at("bytes");
  r.original_bytes = static_cast<std::uint64_t>(bytes.at("original").as_number());
  r.compressed_bytes = static_cast<std::uint64_t>(bytes.at("compressed").as_number());
  r.payload_bytes = static_cast<std::uint64_t>(bytes.at("payload").as_number());

  if (const Json* err = doc.find("error")) {
    r.has_error_metrics = true;
    r.error.mean_rel = err->at("mean_rel").as_number();
    r.error.max_rel = err->at("max_rel").as_number();
    r.error.max_abs = err->at("max_abs").as_number();
    r.error.rmse = err->at("rmse").as_number();
    if (const Json* psnr = err->find("psnr")) {
      r.error.psnr = psnr->is_null() ? std::numeric_limits<double>::infinity()
                                     : psnr->as_number();
    }
    r.error.count = static_cast<std::uint64_t>(err->at("count").as_number());
  }

  const Json& metrics = doc.at("metrics");
  for (const auto& [k, v] : metrics.at("counters").as_object()) {
    r.metrics.counters[k] = static_cast<std::uint64_t>(v.as_number());
  }
  for (const auto& [k, v] : metrics.at("gauges").as_object()) {
    r.metrics.gauges[k] = v.as_number();
  }
  for (const auto& [k, v] : metrics.at("histograms").as_object()) {
    r.metrics.histograms[k] = histogram_from_json(v);
  }
  r.span_count = static_cast<std::uint64_t>(doc.at("span_count").as_number());
  if (const Json* quality = doc.find("quality")) r.quality = *quality;
  return r;
}

std::string RunReport::to_text() const {
  std::string out;
  char buf[160];
  const auto line = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out += buf;
    out.push_back('\n');
  };
  line("%s", tool.c_str());
  for (const auto& [k, v] : params) line("  %-18s %s", k.c_str(), v.c_str());
  if (original_bytes != 0) {
    line("  %-18s %llu -> %llu bytes (compression rate %.2f %%)", "size",
         static_cast<unsigned long long>(original_bytes),
         static_cast<unsigned long long>(compressed_bytes), compression_rate_percent());
  }
  if (payload_bytes != 0) {
    line("  %-18s %llu bytes", "payload",
         static_cast<unsigned long long>(payload_bytes));
  }
  for (const auto& [stage, seconds] : stages_seconds) {
    line("  stage %-12s %10.3f ms", stage.c_str(), seconds * 1e3);
  }
  if (has_error_metrics) {
    line("  %-18s %.6f %%", "avg rel error", error.mean_rel * 100.0);
    line("  %-18s %.6f %%", "max rel error", error.max_rel * 100.0);
    line("  %-18s %.6g", "max abs error", error.max_abs);
    line("  %-18s %.6g", "rmse", error.rmse);
  }
  line("  %-18s %llu", "spans", static_cast<unsigned long long>(span_count));
  return out;
}

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");
  f.write(text.data(), static_cast<std::streamsize>(text.size()));
  f.flush();
  if (!f) throw std::runtime_error("write failed for " + path);
}

}  // namespace wck::telemetry
