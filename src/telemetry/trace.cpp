#include "telemetry/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "telemetry/json.hpp"

namespace wck::telemetry {

namespace {

// The thread's ambient distributed-trace context. Installed by an
// RPC-boundary TraceSpan for its lifetime; plain value swap, so setting
// and restoring it is allocation-free and noexcept.
thread_local TraceContext t_ambient_ctx;

TraceContext exchange_ambient(const TraceContext& ctx) noexcept {
  const TraceContext prev = t_ambient_ctx;
  t_ambient_ctx = ctx;
  return prev;
}

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

TraceContext current_trace_context() noexcept { return t_ambient_ctx; }

std::uint64_t next_span_id() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  // Clock ⊕ the counter's (ASLR-randomised) address gives a base that
  // differs across processes even when they start in the same tick.
  static const std::uint64_t base =
      static_cast<std::uint64_t>(std::chrono::steady_clock::now().time_since_epoch().count()) ^
      reinterpret_cast<std::uintptr_t>(&counter);
  std::uint64_t id;
  do {
    id = splitmix64(base + counter.fetch_add(1, std::memory_order_relaxed));
  } while (id == 0);
  return id;
}

std::string trace_id_hex(std::uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(id));
  return std::string(buf, 16);
}

struct Tracer::ThreadStream {
  mutable Mutex mu;
  std::vector<SpanRecord> spans WCK_GUARDED_BY(mu);
  // Written once (under the Tracer's mu_) before the stream is ever
  // shared; read-only afterwards, so it needs no guard.
  std::uint32_t tid = 0;
  // Only the owning thread calls enter()/leave(), but snapshotting
  // threads hold mu for spans anyway — guarding depth too keeps the
  // whole mutable state under one discipline at zero extra cost.
  std::uint32_t depth WCK_GUARDED_BY(mu) = 0;
};

double Tracer::now_us() const noexcept {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - epoch_)
      .count();
}

Tracer::ThreadStream& Tracer::stream_for_this_thread() {
  thread_local std::shared_ptr<ThreadStream> local;
  thread_local Tracer* local_owner = nullptr;
  if (!local || local_owner != this) {
    auto stream = std::make_shared<ThreadStream>();
    MutexLock lk(mu_);
    stream->tid = static_cast<std::uint32_t>(streams_.size());
    streams_.push_back(stream);
    local = std::move(stream);
    local_owner = this;
  }
  return *local;
}

void Tracer::record(std::string name, double start_us, double dur_us, std::uint32_t depth) {
  record(std::move(name), start_us, dur_us, depth, TraceContext{});
}

void Tracer::record(std::string name, double start_us, double dur_us, std::uint32_t depth,
                    const TraceContext& ctx) {
  ThreadStream& s = stream_for_this_thread();
  MutexLock lk(s.mu);
  s.spans.push_back(SpanRecord{std::move(name), start_us, dur_us, depth, s.tid, ctx.trace_id,
                               ctx.span_id, ctx.parent_span_id});
}

std::uint32_t Tracer::enter() {
  ThreadStream& s = stream_for_this_thread();
  MutexLock lk(s.mu);
  return s.depth++;
}

void Tracer::leave() {
  ThreadStream& s = stream_for_this_thread();
  MutexLock lk(s.mu);
  if (s.depth > 0) --s.depth;
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::vector<std::shared_ptr<ThreadStream>> streams;
  {
    MutexLock lk(mu_);
    streams = streams_;
  }
  std::vector<SpanRecord> out;
  for (const auto& s : streams) {
    MutexLock lk(s->mu);
    out.insert(out.end(), s->spans.begin(), s->spans.end());
  }
  std::stable_sort(out.begin(), out.end(), [](const SpanRecord& a, const SpanRecord& b) {
    return a.tid != b.tid ? a.tid < b.tid : a.start_us < b.start_us;
  });
  return out;
}

std::size_t Tracer::span_count() const {
  std::vector<std::shared_ptr<ThreadStream>> streams;
  {
    MutexLock lk(mu_);
    streams = streams_;
  }
  std::size_t n = 0;
  for (const auto& s : streams) {
    MutexLock lk(s->mu);
    n += s->spans.size();
  }
  return n;
}

void Tracer::clear() {
  std::vector<std::shared_ptr<ThreadStream>> streams;
  {
    MutexLock lk(mu_);
    streams = streams_;
  }
  for (const auto& s : streams) {
    MutexLock lk(s->mu);
    s->spans.clear();
  }
}

std::string Tracer::chrome_trace_json() const {
  Json::Array events;
  for (const SpanRecord& span : snapshot()) {
    Json::Object e;
    e["name"] = span.name;
    e["ph"] = "X";
    e["ts"] = span.start_us;
    e["dur"] = span.dur_us;
    e["pid"] = 0;
    e["tid"] = static_cast<double>(span.tid);
    Json::Object args{{"depth", static_cast<double>(span.depth)}};
    // Ids go out as 16-digit hex strings: JSON numbers lose precision
    // above 2^53, and merge_traces.py matches them textually anyway.
    if (span.trace_id != 0) args["trace_id"] = trace_id_hex(span.trace_id);
    if (span.span_id != 0) args["span_id"] = trace_id_hex(span.span_id);
    if (span.parent_span_id != 0) args["parent_span_id"] = trace_id_hex(span.parent_span_id);
    e["args"] = std::move(args);
    events.emplace_back(std::move(e));
  }
  Json::Object doc;
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  return Json(std::move(doc)).dump(1);
}

Tracer& Tracer::global() {
  static auto* tracer = new Tracer();  // leaked: see MetricsRegistry::global
  return *tracer;
}

TraceSpan::TraceSpan(const char* name) : name_(name) {
  if (!enabled()) return;
  active_ = true;
  // Interior spans inherit the ambient trace (parented to the
  // enclosing RPC span) without drawing their own span id.
  ctx_ = TraceContext{t_ambient_ctx.trace_id, 0, t_ambient_ctx.span_id};
  Tracer& t = Tracer::global();
  depth_ = t.enter();
  start_us_ = t.now_us();
}

TraceSpan::TraceSpan(const char* name, const TraceContext& ctx) : name_(name) {
  if (!enabled()) return;
  active_ = true;
  ctx_ = ctx;
  if (ctx.active()) {
    scoped_ = true;
    prev_ = exchange_ambient(ctx);
  }
  Tracer& t = Tracer::global();
  depth_ = t.enter();
  start_us_ = t.now_us();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  Tracer& t = Tracer::global();
  const double end_us = t.now_us();
  t.record(name_, start_us_, end_us - start_us_, depth_, ctx_);
  t.leave();
  if (scoped_) exchange_ambient(prev_);
}

}  // namespace wck::telemetry
