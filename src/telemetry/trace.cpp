#include "telemetry/trace.hpp"

#include <algorithm>

#include "telemetry/json.hpp"

namespace wck::telemetry {

struct Tracer::ThreadStream {
  mutable Mutex mu;
  std::vector<SpanRecord> spans WCK_GUARDED_BY(mu);
  // Written once (under the Tracer's mu_) before the stream is ever
  // shared; read-only afterwards, so it needs no guard.
  std::uint32_t tid = 0;
  // Only the owning thread calls enter()/leave(), but snapshotting
  // threads hold mu for spans anyway — guarding depth too keeps the
  // whole mutable state under one discipline at zero extra cost.
  std::uint32_t depth WCK_GUARDED_BY(mu) = 0;
};

double Tracer::now_us() const noexcept {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - epoch_)
      .count();
}

Tracer::ThreadStream& Tracer::stream_for_this_thread() {
  thread_local std::shared_ptr<ThreadStream> local;
  thread_local Tracer* local_owner = nullptr;
  if (!local || local_owner != this) {
    auto stream = std::make_shared<ThreadStream>();
    MutexLock lk(mu_);
    stream->tid = static_cast<std::uint32_t>(streams_.size());
    streams_.push_back(stream);
    local = std::move(stream);
    local_owner = this;
  }
  return *local;
}

void Tracer::record(std::string name, double start_us, double dur_us, std::uint32_t depth) {
  ThreadStream& s = stream_for_this_thread();
  MutexLock lk(s.mu);
  s.spans.push_back(SpanRecord{std::move(name), start_us, dur_us, depth, s.tid});
}

std::uint32_t Tracer::enter() {
  ThreadStream& s = stream_for_this_thread();
  MutexLock lk(s.mu);
  return s.depth++;
}

void Tracer::leave() {
  ThreadStream& s = stream_for_this_thread();
  MutexLock lk(s.mu);
  if (s.depth > 0) --s.depth;
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::vector<std::shared_ptr<ThreadStream>> streams;
  {
    MutexLock lk(mu_);
    streams = streams_;
  }
  std::vector<SpanRecord> out;
  for (const auto& s : streams) {
    MutexLock lk(s->mu);
    out.insert(out.end(), s->spans.begin(), s->spans.end());
  }
  std::stable_sort(out.begin(), out.end(), [](const SpanRecord& a, const SpanRecord& b) {
    return a.tid != b.tid ? a.tid < b.tid : a.start_us < b.start_us;
  });
  return out;
}

std::size_t Tracer::span_count() const {
  std::vector<std::shared_ptr<ThreadStream>> streams;
  {
    MutexLock lk(mu_);
    streams = streams_;
  }
  std::size_t n = 0;
  for (const auto& s : streams) {
    MutexLock lk(s->mu);
    n += s->spans.size();
  }
  return n;
}

void Tracer::clear() {
  std::vector<std::shared_ptr<ThreadStream>> streams;
  {
    MutexLock lk(mu_);
    streams = streams_;
  }
  for (const auto& s : streams) {
    MutexLock lk(s->mu);
    s->spans.clear();
  }
}

std::string Tracer::chrome_trace_json() const {
  Json::Array events;
  for (const SpanRecord& span : snapshot()) {
    Json::Object e;
    e["name"] = span.name;
    e["ph"] = "X";
    e["ts"] = span.start_us;
    e["dur"] = span.dur_us;
    e["pid"] = 0;
    e["tid"] = static_cast<double>(span.tid);
    e["args"] = Json::Object{{"depth", static_cast<double>(span.depth)}};
    events.emplace_back(std::move(e));
  }
  Json::Object doc;
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  return Json(std::move(doc)).dump(1);
}

Tracer& Tracer::global() {
  static auto* tracer = new Tracer();  // leaked: see MetricsRegistry::global
  return *tracer;
}

TraceSpan::TraceSpan(const char* name) : name_(name) {
  if (!enabled()) return;
  active_ = true;
  Tracer& t = Tracer::global();
  depth_ = t.enter();
  start_us_ = t.now_us();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  Tracer& t = Tracer::global();
  const double end_us = t.now_us();
  t.record(name_, start_us_, end_us - start_us_, depth_);
  t.leave();
}

}  // namespace wck::telemetry
