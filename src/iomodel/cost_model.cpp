#include "iomodel/cost_model.hpp"

#include "util/error.hpp"

namespace wck {

CheckpointCostModel::CheckpointCostModel(double bytes_per_process, double compression_rate,
                                         StageTimes per_process_compression,
                                         StorageModel storage)
    : bytes_per_process_(bytes_per_process),
      compression_rate_(compression_rate),
      stages_(std::move(per_process_compression)),
      compression_time_(stages_.total()),
      storage_(storage) {
  if (bytes_per_process <= 0.0) {
    throw InvalidArgumentError("cost model: bytes_per_process must be positive");
  }
  if (compression_rate < 0.0) {
    throw InvalidArgumentError("cost model: compression rate must be >= 0");
  }
  if (storage.bandwidth_bytes_per_s <= 0.0) {
    throw InvalidArgumentError("cost model: bandwidth must be positive");
  }
}

double CheckpointCostModel::time_with_compression(std::size_t parallelism) const noexcept {
  const double total = bytes_per_process_ * compression_rate_ *
                       static_cast<double>(parallelism);
  return compression_time_ + storage_.write_time(total);
}

double CheckpointCostModel::time_without_compression(std::size_t parallelism) const noexcept {
  return storage_.write_time(bytes_per_process_ * static_cast<double>(parallelism));
}

std::optional<double> CheckpointCostModel::crosspoint() const noexcept {
  // compression_time + cr*S*P/BW = S*P/BW  =>  P = C*BW / (S*(1-cr)).
  if (compression_rate_ >= 1.0) return std::nullopt;
  return compression_time_ * storage_.bandwidth_bytes_per_s /
         (bytes_per_process_ * (1.0 - compression_rate_));
}

bool CheckpointCostModel::compression_viable(std::size_t parallelism) const noexcept {
  return time_with_compression(parallelism) < time_without_compression(parallelism);
}

double CheckpointCostModel::reduction_at(std::size_t parallelism) const noexcept {
  const double without = time_without_compression(parallelism);
  if (without <= 0.0) return 0.0;
  return 1.0 - time_with_compression(parallelism) / without;
}

std::vector<CheckpointCostModel::Row> CheckpointCostModel::sweep(
    const std::vector<std::size_t>& parallelisms) const {
  std::vector<Row> rows;
  rows.reserve(parallelisms.size());
  for (const std::size_t p : parallelisms) {
    Row row;
    row.parallelism = p;
    row.with_compression_s = time_with_compression(p);
    row.without_compression_s = time_without_compression(p);
    row.stage_breakdown = stages_;
    row.io_s = row.with_compression_s - compression_time_;
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace wck
