// Burst-buffer storage model (paper Sec. V ref [30]: "utilization of new
// storage hierarchy, burst buffer, is validated to significantly improve
// both checkpoint time and storage reliability").
//
// A burst buffer absorbs checkpoint bursts at high bandwidth and drains
// to the parallel filesystem asynchronously. The application-visible
// write time covers only the absorbed portion — unless the buffer is
// still draining from the previous burst or the burst overflows the
// remaining capacity, in which case the overflow goes through at PFS
// speed.
#pragma once

#include <cstddef>

namespace wck {

struct BurstBufferConfig {
  double bb_bandwidth_bytes_per_s = 400e9;  ///< absorb speed (aggregate)
  double pfs_bandwidth_bytes_per_s = 20e9;  ///< drain / overflow speed
  double capacity_bytes = 1e12;             ///< buffer size
};

/// Stateful model: tracks the buffer fill level across a sequence of
/// writes separated by compute phases (during which the buffer drains).
class BurstBufferModel {
 public:
  explicit BurstBufferModel(const BurstBufferConfig& config);

  [[nodiscard]] const BurstBufferConfig& config() const noexcept { return config_; }

  /// Application-visible time to write `bytes` right now. Updates the
  /// fill level.
  double write(double bytes);

  /// Advances time by `seconds` of computation; the buffer drains to the
  /// PFS meanwhile.
  void compute(double seconds);

  /// Bytes currently buffered and not yet drained.
  [[nodiscard]] double fill_bytes() const noexcept { return fill_; }

  /// Steady-state cycle check: a periodic checkpoint of `bytes` every
  /// `interval_s` is sustainable iff the drain keeps up on average.
  [[nodiscard]] bool sustainable(double bytes, double interval_s) const noexcept;

 private:
  BurstBufferConfig config_;
  double fill_ = 0.0;
};

}  // namespace wck
