// Checkpoint cost modeling (paper Sec. II-A Eq. 1 and Sec. IV-D Fig. 9).
//
// The paper estimates checkpoint time at scale by combining measured
// per-process compression stage times with a modeled parallel-filesystem
// write:   t_io(P) = latency + per_process_bytes * cr * P / bandwidth.
// Compression runs embarrassingly parallel per process, so its time is
// independent of P; I/O is shared, so its time grows linearly in P. The
// with-compression curve is therefore flatter, crossing the
// no-compression curve at a moderate P and approaching a (1 - cr)
// asymptotic reduction.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "util/timer.hpp"

namespace wck {

/// A shared storage system, e.g. the paper's 20 GB/s parallel FS.
struct StorageModel {
  double bandwidth_bytes_per_s = 20e9;
  double latency_s = 0.0;

  /// Time to write `total_bytes` through the shared system.
  [[nodiscard]] double write_time(double total_bytes) const noexcept {
    return latency_s + total_bytes / bandwidth_bytes_per_s;
  }
};

/// Weak-scaling checkpoint cost model.
class CheckpointCostModel {
 public:
  /// `bytes_per_process`: checkpoint size per process (paper: 1.5 MB).
  /// `compression_rate`: compressed/original as a fraction (paper: 0.19).
  /// `per_process_compression`: measured stage times for one process.
  CheckpointCostModel(double bytes_per_process, double compression_rate,
                      StageTimes per_process_compression, StorageModel storage);

  /// Total checkpoint time with compression at parallelism P (Fig. 9's
  /// "Checkpoint time (w/ compression)" line).
  [[nodiscard]] double time_with_compression(std::size_t parallelism) const noexcept;

  /// Total checkpoint time without compression at parallelism P.
  [[nodiscard]] double time_without_compression(std::size_t parallelism) const noexcept;

  /// The continuous parallelism at which both strategies cost the same
  /// (the Fig. 9 crosspoint, ~768 in the paper); nullopt if compression
  /// never pays off (compression_rate >= 1).
  [[nodiscard]] std::optional<double> crosspoint() const noexcept;

  /// Eq. 1 viability at a given P: compression helps iff
  /// time_with < time_without.
  [[nodiscard]] bool compression_viable(std::size_t parallelism) const noexcept;

  /// The P -> infinity cost reduction, 1 - cr (the paper's "about 81%").
  [[nodiscard]] double asymptotic_reduction() const noexcept { return 1.0 - compression_rate_; }

  /// Reduction at a finite P: 1 - with/without.
  [[nodiscard]] double reduction_at(std::size_t parallelism) const noexcept;

  [[nodiscard]] double compression_time() const noexcept { return compression_time_; }
  [[nodiscard]] const StageTimes& stage_times() const noexcept { return stages_; }
  [[nodiscard]] double compression_rate() const noexcept { return compression_rate_; }
  [[nodiscard]] double bytes_per_process() const noexcept { return bytes_per_process_; }
  [[nodiscard]] const StorageModel& storage() const noexcept { return storage_; }

  /// One Fig. 9 table row.
  struct Row {
    std::size_t parallelism;
    double with_compression_s;
    double without_compression_s;
    StageTimes stage_breakdown;  ///< compression stages (P-independent)
    double io_s;                 ///< modeled I/O share of with-compression
  };
  /// Sweeps parallelism values and returns the Fig. 9 series.
  [[nodiscard]] std::vector<Row> sweep(const std::vector<std::size_t>& parallelisms) const;

 private:
  double bytes_per_process_;
  double compression_rate_;
  StageTimes stages_;
  double compression_time_;
  StorageModel storage_;
};

}  // namespace wck
