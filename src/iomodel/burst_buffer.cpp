#include "iomodel/burst_buffer.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace wck {

BurstBufferModel::BurstBufferModel(const BurstBufferConfig& config) : config_(config) {
  if (config.bb_bandwidth_bytes_per_s <= 0.0 || config.pfs_bandwidth_bytes_per_s <= 0.0) {
    throw InvalidArgumentError("burst buffer: bandwidths must be positive");
  }
  if (config.capacity_bytes <= 0.0) {
    throw InvalidArgumentError("burst buffer: capacity must be positive");
  }
}

double BurstBufferModel::write(double bytes) {
  if (bytes < 0.0) throw InvalidArgumentError("burst buffer: negative write");
  const double room = config_.capacity_bytes - fill_;
  const double absorbed = std::min(bytes, room);
  const double overflow = bytes - absorbed;
  // Absorbed portion lands at buffer speed; overflow is throttled to the
  // PFS drain rate (write-through).
  const double time = absorbed / config_.bb_bandwidth_bytes_per_s +
                      overflow / config_.pfs_bandwidth_bytes_per_s;
  fill_ += absorbed;
  // The overflow passes straight through; it never occupies the buffer.
  // While the write is in progress the buffer also drains.
  const double drained = time * config_.pfs_bandwidth_bytes_per_s;
  fill_ = std::max(0.0, fill_ - drained);
  return time;
}

void BurstBufferModel::compute(double seconds) {
  if (seconds < 0.0) throw InvalidArgumentError("burst buffer: negative time");
  fill_ = std::max(0.0, fill_ - seconds * config_.pfs_bandwidth_bytes_per_s);
}

bool BurstBufferModel::sustainable(double bytes, double interval_s) const noexcept {
  if (interval_s <= 0.0) return false;
  return bytes / interval_s <= config_.pfs_bandwidth_bytes_per_s;
}

}  // namespace wck
