#include "climate/distributed.hpp"

#include <cstring>

#include "ckpt/checkpoint.hpp"
#include "io/io_backend.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace wck {
namespace {

constexpr double kDx = 1.0;
constexpr double kDy = 1.0;

// Message tag bases (each field/purpose gets a distinct tag space).
constexpr int kTagZetaHalo = 100;
constexpr int kTagTempHalo = 200;
constexpr int kTagPsiRows = 300;

}  // namespace

DistributedClimate::DistributedClimate(const ClimateConfig& config, Comm& comm)
    : config_(config),
      comm_(comm),
      local_ny_(config.ny / comm.size()),
      j0_(comm.rank() * (config.ny / comm.size())),
      poisson_(config.ny, config.nx, kDy, kDx),
      zeta_(Shape{config.nz, local_ny_ + 2, config.nx}),
      temp_(Shape{config.nz, local_ny_ + 2, config.nx}),
      psi_(Shape{config.nz, local_ny_ + 2, config.nx}),
      forcing_(Shape{config.nz, local_ny_, config.nx}),
      t_eq_(Shape{config.nz, local_ny_, config.nx}),
      k_zeta_(Shape{config.nz, local_ny_ + 2, config.nx}),
      k_temp_(Shape{config.nz, local_ny_ + 2, config.nx}),
      s_zeta_(Shape{config.nz, local_ny_ + 2, config.nx}),
      s_temp_(Shape{config.nz, local_ny_ + 2, config.nx}) {
  if (config.ny % comm.size() != 0) {
    throw InvalidArgumentError("DistributedClimate: ny must be divisible by rank count");
  }
  if (local_ny_ < 1) {
    throw InvalidArgumentError("DistributedClimate: every rank needs at least one row");
  }

  // Reproduce the serial initialization exactly, then keep the slab.
  const MiniClimate serial(config);
  const std::size_t nx = config.nx;
  const std::size_t nz = config.nz;
  for (std::size_t k = 0; k < nz; ++k) {
    for (std::size_t j = 0; j < local_ny_; ++j) {
      for (std::size_t i = 0; i < nx; ++i) {
        zeta_(k, j + 1, i) = serial.vorticity()(k, j0_ + j, i);
        temp_(k, j + 1, i) = serial.temperature()(k, j0_ + j, i);
        forcing_(k, j, i) = serial.forcing_pattern()(k, j0_ + j, i);
        t_eq_(k, j, i) = serial.equilibrium_temperature()(k, j0_ + j, i);
      }
    }
  }
}

void DistributedClimate::halo_exchange(NdArray<double>& slab, int tag_base) {
  const std::size_t nx = config_.nx;
  const std::size_t nz = config_.nz;
  const std::size_t prev = (comm_.rank() + comm_.size() - 1) % comm_.size();
  const std::size_t next = (comm_.rank() + 1) % comm_.size();

  // Pack one global row (all levels) into a contiguous buffer.
  auto pack_row = [&](std::size_t slab_row) {
    std::vector<double> buf(nz * nx);
    for (std::size_t k = 0; k < nz; ++k) {
      std::memcpy(buf.data() + k * nx, &slab(k, slab_row, 0), nx * sizeof(double));
    }
    return buf;
  };
  auto unpack_row = [&](std::size_t slab_row, std::span<const double> buf) {
    for (std::size_t k = 0; k < nz; ++k) {
      std::memcpy(&slab(k, slab_row, 0), buf.data() + k * nx, nx * sizeof(double));
    }
  };

  const auto top = pack_row(1);
  const auto bottom = pack_row(local_ny_);
  comm_.send_values<double>(prev, tag_base + 0, top);     // my top -> prev's bottom halo
  comm_.send_values<double>(next, tag_base + 1, bottom);  // my bottom -> next's top halo

  std::vector<double> buf(nz * nx);
  comm_.recv_values<double>(next, tag_base + 0, buf);
  unpack_row(local_ny_ + 1, buf);
  comm_.recv_values<double>(prev, tag_base + 1, buf);
  unpack_row(0, buf);
}

void DistributedClimate::solve_psi(const NdArray<double>& zeta_slab) {
  const std::size_t nx = config_.nx;
  const std::size_t ny = config_.ny;
  const std::size_t nz = config_.nz;

  // Pack owned rows, gather to root.
  std::vector<double> owned(nz * local_ny_ * nx);
  for (std::size_t k = 0; k < nz; ++k) {
    for (std::size_t j = 0; j < local_ny_; ++j) {
      std::memcpy(owned.data() + (k * local_ny_ + j) * nx, &zeta_slab(k, j + 1, 0),
                  nx * sizeof(double));
    }
  }
  const auto slabs = comm_.gather(std::as_bytes(std::span<const double>(owned)), 0);

  if (comm_.rank() == 0) {
    // Assemble the full field, solve level by level, send each rank its
    // rows including halos.
    std::vector<double> full_zeta(nz * ny * nx);
    for (std::size_t r = 0; r < comm_.size(); ++r) {
      const auto* src = reinterpret_cast<const double*>(slabs[r].data());
      const std::size_t rows0 = r * local_ny_;
      for (std::size_t k = 0; k < nz; ++k) {
        for (std::size_t j = 0; j < local_ny_; ++j) {
          std::memcpy(full_zeta.data() + (k * ny + rows0 + j) * nx,
                      src + (k * local_ny_ + j) * nx, nx * sizeof(double));
        }
      }
    }
    std::vector<double> full_psi(nz * ny * nx);
    for (std::size_t k = 0; k < nz; ++k) {
      poisson_.solve(std::span(full_zeta.data() + k * ny * nx, ny * nx),
                     std::span(full_psi.data() + k * ny * nx, ny * nx));
    }
    // Distribute rows j0-1 .. j0+local_ny (periodic) per rank.
    for (std::size_t r = 0; r < comm_.size(); ++r) {
      std::vector<double> out(nz * (local_ny_ + 2) * nx);
      const std::size_t rows0 = r * local_ny_;
      for (std::size_t k = 0; k < nz; ++k) {
        for (std::size_t j = 0; j < local_ny_ + 2; ++j) {
          const std::size_t gj = (rows0 + j + ny - 1) % ny;
          std::memcpy(out.data() + (k * (local_ny_ + 2) + j) * nx,
                      full_psi.data() + (k * ny + gj) * nx, nx * sizeof(double));
        }
      }
      comm_.send_values<double>(r, kTagPsiRows, std::span<const double>(out));
    }
  }

  std::vector<double> mine(nz * (local_ny_ + 2) * nx);
  comm_.recv_values<double>(0, kTagPsiRows, mine);
  std::memcpy(psi_.data(), mine.data(), mine.size() * sizeof(double));
}

void DistributedClimate::tendencies(const NdArray<double>& zeta, const NdArray<double>& temp,
                                    NdArray<double>& dzeta, NdArray<double>& dtemp) {
  const std::size_t nx = config_.nx;
  const std::size_t nz = config_.nz;
  const double inv4 = 1.0 / (4.0 * kDx * kDy);

  for (std::size_t k = 0; k < nz; ++k) {
    for (std::size_t j = 1; j <= local_ny_; ++j) {
      const std::size_t jp = j + 1;  // halo layout: neighbours always exist
      const std::size_t jm = j - 1;
      for (std::size_t i = 0; i < nx; ++i) {
        const std::size_t ip = (i + 1) % nx;
        const std::size_t im = (i + nx - 1) % nx;
        const auto z = [&](std::size_t jj, std::size_t ii) { return zeta(k, jj, ii); };
        const auto ps = [&](std::size_t jj, std::size_t ii) { return psi_(k, jj, ii); };
        const auto tt = [&](std::size_t jj, std::size_t ii) { return temp(k, jj, ii); };

        // Same Arakawa Jacobian arithmetic as the serial model.
        const double j1 = (ps(j, ip) - ps(j, im)) * (z(jp, i) - z(jm, i)) -
                          (ps(jp, i) - ps(jm, i)) * (z(j, ip) - z(j, im));
        const double j2 = ps(j, ip) * (z(jp, ip) - z(jm, ip)) -
                          ps(j, im) * (z(jp, im) - z(jm, im)) -
                          ps(jp, i) * (z(jp, ip) - z(jp, im)) +
                          ps(jm, i) * (z(jm, ip) - z(jm, im));
        const double j3 = ps(jp, ip) * (z(jp, i) - z(j, ip)) -
                          ps(jm, im) * (z(j, im) - z(jm, i)) -
                          ps(jp, im) * (z(jp, i) - z(j, im)) +
                          ps(jm, ip) * (z(j, ip) - z(jm, i));
        const double jac = (j1 + j2 + j3) * inv4 / 3.0;

        const double lap_z = (z(j, ip) + z(j, im) - 2.0 * z(j, i)) / (kDx * kDx) +
                             (z(jp, i) + z(jm, i) - 2.0 * z(j, i)) / (kDy * kDy);

        double coupling = 0.0;
        if (nz > 1) {
          const double z_up = k + 1 < nz ? zeta(k + 1, j, i) : z(j, i);
          const double z_dn = k > 0 ? zeta(k - 1, j, i) : z(j, i);
          coupling = config_.vertical_coupling * (z_up + z_dn - 2.0 * z(j, i));
        }

        dzeta(k, j, i) = -jac + config_.viscosity * lap_z - config_.drag * z(j, i) +
                         forcing_(k, j - 1, i) + coupling;

        const double uu = -(ps(jp, i) - ps(jm, i)) / (2.0 * kDy);
        const double vv = (ps(j, ip) - ps(j, im)) / (2.0 * kDx);
        const double tx = (tt(j, ip) - tt(j, im)) / (2.0 * kDx);
        const double ty = (tt(jp, i) - tt(jm, i)) / (2.0 * kDy);
        const double lap_t = (tt(j, ip) + tt(j, im) - 2.0 * tt(j, i)) / (kDx * kDx) +
                             (tt(jp, i) + tt(jm, i) - 2.0 * tt(j, i)) / (kDy * kDy);
        dtemp(k, j, i) = -(uu * tx + vv * ty) + config_.thermal_diffusivity * lap_t +
                         config_.thermal_relaxation * (t_eq_(k, j - 1, i) - tt(j, i));
      }
    }
  }
}

void DistributedClimate::step() {
  const double dt = config_.dt;
  const std::size_t nx = config_.nx;
  const std::size_t nz = config_.nz;

  auto eval = [&](NdArray<double>& zeta, NdArray<double>& temp, NdArray<double>& dz,
                  NdArray<double>& dtp) {
    halo_exchange(zeta, kTagZetaHalo);
    halo_exchange(temp, kTagTempHalo);
    solve_psi(zeta);
    tendencies(zeta, temp, dz, dtp);
  };
  auto combine = [&](auto&& fn) {
    for (std::size_t k = 0; k < nz; ++k) {
      for (std::size_t j = 1; j <= local_ny_; ++j) {
        for (std::size_t i = 0; i < nx; ++i) fn(k, j, i);
      }
    }
  };

  eval(zeta_, temp_, k_zeta_, k_temp_);
  combine([&](std::size_t k, std::size_t j, std::size_t i) {
    s_zeta_(k, j, i) = zeta_(k, j, i) + dt * k_zeta_(k, j, i);
    s_temp_(k, j, i) = temp_(k, j, i) + dt * k_temp_(k, j, i);
  });
  eval(s_zeta_, s_temp_, k_zeta_, k_temp_);
  combine([&](std::size_t k, std::size_t j, std::size_t i) {
    s_zeta_(k, j, i) = 0.75 * zeta_(k, j, i) + 0.25 * (s_zeta_(k, j, i) + dt * k_zeta_(k, j, i));
    s_temp_(k, j, i) = 0.75 * temp_(k, j, i) + 0.25 * (s_temp_(k, j, i) + dt * k_temp_(k, j, i));
  });
  eval(s_zeta_, s_temp_, k_zeta_, k_temp_);
  const double third = 1.0 / 3.0;
  combine([&](std::size_t k, std::size_t j, std::size_t i) {
    zeta_(k, j, i) =
        third * zeta_(k, j, i) + (2.0 * third) * (s_zeta_(k, j, i) + dt * k_zeta_(k, j, i));
    temp_(k, j, i) =
        third * temp_(k, j, i) + (2.0 * third) * (s_temp_(k, j, i) + dt * k_temp_(k, j, i));
  });
  ++step_;
}

void DistributedClimate::run(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) step();
}

NdArray<double> DistributedClimate::local_vorticity() const {
  NdArray<double> out(Shape{config_.nz, local_ny_, config_.nx});
  for (std::size_t k = 0; k < config_.nz; ++k) {
    for (std::size_t j = 0; j < local_ny_; ++j) {
      for (std::size_t i = 0; i < config_.nx; ++i) out(k, j, i) = zeta_(k, j + 1, i);
    }
  }
  return out;
}

NdArray<double> DistributedClimate::local_temperature() const {
  NdArray<double> out(Shape{config_.nz, local_ny_, config_.nx});
  for (std::size_t k = 0; k < config_.nz; ++k) {
    for (std::size_t j = 0; j < local_ny_; ++j) {
      for (std::size_t i = 0; i < config_.nx; ++i) out(k, j, i) = temp_(k, j + 1, i);
    }
  }
  return out;
}

namespace {

NdArray<double> gather_field(Comm& comm, const NdArray<double>& slab, const ClimateConfig& cfg,
                             std::size_t local_ny, std::size_t root) {
  const auto gathered = comm.gather(std::as_bytes(slab.values()), root);
  if (comm.rank() != root) return {};
  NdArray<double> full(Shape{cfg.nz, cfg.ny, cfg.nx});
  for (std::size_t r = 0; r < comm.size(); ++r) {
    const auto* src = reinterpret_cast<const double*>(gathered[r].data());
    for (std::size_t k = 0; k < cfg.nz; ++k) {
      for (std::size_t j = 0; j < local_ny; ++j) {
        std::memcpy(&full(k, r * local_ny + j, 0), src + (k * local_ny + j) * cfg.nx,
                    cfg.nx * sizeof(double));
      }
    }
  }
  return full;
}

}  // namespace

NdArray<double> DistributedClimate::gather_vorticity(std::size_t root) {
  return gather_field(comm_, local_vorticity(), config_, local_ny_, root);
}

NdArray<double> DistributedClimate::gather_temperature(std::size_t root) {
  return gather_field(comm_, local_temperature(), config_, local_ny_, root);
}

void DistributedClimate::restore_local(const NdArray<double>& zeta_slab,
                                       const NdArray<double>& temp_slab, std::uint64_t step) {
  const Shape want{config_.nz, local_ny_, config_.nx};
  if (zeta_slab.shape() != want || temp_slab.shape() != want) {
    throw InvalidArgumentError("restore_local: slab shape mismatch");
  }
  for (std::size_t k = 0; k < config_.nz; ++k) {
    for (std::size_t j = 0; j < local_ny_; ++j) {
      for (std::size_t i = 0; i < config_.nx; ++i) {
        zeta_(k, j + 1, i) = zeta_slab(k, j, i);
        temp_(k, j + 1, i) = temp_slab(k, j, i);
      }
    }
  }
  step_ = step;
}

CheckpointInfo DistributedClimate::write_local_checkpoint(const std::filesystem::path& dir,
                                                          const Codec& codec,
                                                          IoBackend* io) const {
  WCK_TRACE_SPAN("dist.ckpt.write");
  const WallTimer ckpt_timer;
  NdArray<double> zeta = local_vorticity();
  NdArray<double> temp = local_temperature();
  CheckpointRegistry reg;
  reg.add("vorticity", &zeta);
  reg.add("temperature", &temp);
  const auto path = dir / ("rank_" + std::to_string(comm_.rank()) + "_step_" +
                           std::to_string(step_) + ".wck");
  CheckpointInfo info = io != nullptr ? write_checkpoint(path, reg, codec, step_, *io)
                                      : write_checkpoint(path, reg, codec, step_);
  WCK_EVENT(kCkptCommit, step_,
            "rank " + std::to_string(comm_.rank()) + " " + path.filename().string());
  // Per-rank checkpoint time: the aggregate histogram feeds Fig. 9-style
  // breakdowns, the per-rank gauge exposes stragglers.
  if (telemetry::enabled()) {
    const double seconds = ckpt_timer.seconds();
    auto& registry = telemetry::MetricsRegistry::global();
    registry.histogram("dist.ckpt.write.seconds").record(seconds);
    registry.gauge("dist.ckpt.rank." + std::to_string(comm_.rank()) + ".last_write_seconds")
        .set(seconds);
  }
  return info;
}

void DistributedClimate::read_local_checkpoint(const std::filesystem::path& dir,
                                               std::uint64_t step, IoBackend* io) {
  WCK_TRACE_SPAN("dist.ckpt.read");
  NdArray<double> zeta;
  NdArray<double> temp;
  CheckpointRegistry reg;
  reg.add("vorticity", &zeta);
  reg.add("temperature", &temp);
  const auto path = dir / ("rank_" + std::to_string(comm_.rank()) + "_step_" +
                           std::to_string(step) + ".wck");
  const CheckpointInfo info =
      io != nullptr ? read_checkpoint(path, reg, *io) : read_checkpoint(path, reg);
  restore_local(zeta, temp, info.step);
}

void DistributedClimate::store_checkpoint_in_memory(InMemoryCheckpointStore& store,
                                                    const Codec& codec) const {
  WCK_TRACE_SPAN("dist.ckpt.memory_store");
  NdArray<double> zeta = local_vorticity();
  NdArray<double> temp = local_temperature();
  CheckpointRegistry reg;
  reg.add("vorticity", &zeta);
  reg.add("temperature", &temp);
  store.store(comm_.rank(), serialize_checkpoint(reg, codec, step_));
}

bool DistributedClimate::restore_checkpoint_from_memory(InMemoryCheckpointStore& store) {
  WCK_TRACE_SPAN("dist.ckpt.memory_restore");
  const bool reconstructed = !store.rank_alive(comm_.rank());
  const std::optional<Bytes> payload = store.retrieve(comm_.rank());
  if (!payload.has_value()) {
    throw CorruptDataError("rank " + std::to_string(comm_.rank()) +
                           ": in-memory checkpoint unrecoverable (parity group cannot "
                           "reconstruct)");
  }
  NdArray<double> zeta;
  NdArray<double> temp;
  CheckpointRegistry reg;
  reg.add("vorticity", &zeta);
  reg.add("temperature", &temp);
  const CheckpointInfo info = restore_checkpoint(*payload, reg);
  restore_local(zeta, temp, info.step);
  if (reconstructed) {
    WCK_COUNTER_ADD("dist.ckpt.parity_recoveries", 1);
    WCK_EVENT(kRestoreParity, info.step, "rank " + std::to_string(comm_.rank()));
  }
  return reconstructed;
}

}  // namespace wck
