// Nudging data assimilation for MiniClimate.
//
// The paper's error-tolerance argument (Sec. II-B) leans on data
// assimilation: real simulations periodically correct intermediate
// results against observations, "which lets us know errors are inherent
// to scientific simulations". This module makes that argument runnable:
// a NudgingAssimilator draws sparse, noisy observations from a truth
// run and relaxes the model toward them — the classic Newtonian-nudging
// scheme. With assimilation active, the error introduced by a lossy
// restart stays bounded instead of growing (bench/ext_assimilation).
#pragma once

#include <cstdint>

#include "climate/mini_climate.hpp"
#include "util/rng.hpp"

namespace wck {

struct AssimilationConfig {
  /// Fractional step toward the observation per assimilation (0..1].
  double nudging_strength = 0.3;
  /// Observe every `stride`-th grid point along each horizontal axis
  /// (sparse sensor network).
  std::size_t stride = 4;
  /// Gaussian sensor noise (stddev, in the observed field's units;
  /// applied relative to each field's dynamic range when relative=true).
  double observation_noise = 0.0;
  std::uint64_t seed = 7;
};

class NudgingAssimilator {
 public:
  explicit NudgingAssimilator(const AssimilationConfig& config);

  [[nodiscard]] const AssimilationConfig& config() const noexcept { return config_; }

  /// Draws observations of `truth`'s prognostic fields at the sensor
  /// locations (adding noise) and nudges `model` toward them. Both
  /// models must share a grid. Diagnostics of `model` are refreshed.
  void assimilate(MiniClimate& model, const MiniClimate& truth);

  /// Number of assimilation cycles performed.
  [[nodiscard]] std::uint64_t cycles() const noexcept { return cycles_; }

 private:
  AssimilationConfig config_;
  Xoshiro256 rng_;
  std::uint64_t cycles_ = 0;
};

}  // namespace wck
