// Domain-decomposed MiniClimate over the MPI-like comm substrate.
//
// The meridional (y) axis is split evenly among ranks; each rank owns a
// slab of every prognostic field with one halo row on each side,
// exchanged with its periodic neighbours every stage. The spectral
// Poisson solve is global, implemented gather-solve-distribute through
// rank 0 (the standard small-scale approach). The distributed
// trajectory is bit-identical to the serial MiniClimate (verified in
// tests), so per-rank checkpointing experiments compose with every
// serial result in this repository.
//
// Checkpoint/restart is per rank, exactly the paper's deployment model:
// each rank compresses and writes its own slab ("embarrassingly
// parallel", Sec. IV-D) and restores it on restart.
#pragma once

#include <filesystem>

#include "ckpt/checkpoint.hpp"
#include "ckpt/codec.hpp"
#include "climate/mini_climate.hpp"
#include "comm/communicator.hpp"
#include "redundancy/xor_parity.hpp"

namespace wck {

class DistributedClimate {
 public:
  /// config.ny must be divisible by comm.size(); every rank passes the
  /// same config. Initialization reproduces the serial model exactly.
  DistributedClimate(const ClimateConfig& config, Comm& comm);

  [[nodiscard]] const ClimateConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint64_t step_count() const noexcept { return step_; }
  [[nodiscard]] std::size_t local_rows() const noexcept { return local_ny_; }
  [[nodiscard]] std::size_t first_row() const noexcept { return j0_; }

  /// Advances one step (collective: every rank must call).
  void step();
  void run(std::uint64_t n);

  /// Owned slab (shape {nz, local_rows, nx}, no halos) of each
  /// prognostic field.
  [[nodiscard]] NdArray<double> local_vorticity() const;
  [[nodiscard]] NdArray<double> local_temperature() const;

  /// Gathers a full field at `root` (collective). Non-roots receive an
  /// empty array.
  [[nodiscard]] NdArray<double> gather_vorticity(std::size_t root = 0);
  [[nodiscard]] NdArray<double> gather_temperature(std::size_t root = 0);

  /// Overwrites the local prognostic slabs (collective because the step
  /// counter must agree; halos refresh on the next step).
  void restore_local(const NdArray<double>& zeta_slab, const NdArray<double>& temp_slab,
                     std::uint64_t step);

  /// Writes this rank's slab through `codec` into
  /// dir/rank_<r>_step_<s>.wck. Returns the write info. A non-null `io`
  /// routes the file I/O through that backend — handing each rank its
  /// own FaultInjectingBackend gives per-rank fault injection. With a
  /// WaveletLossyCodec whose params set threads (or WCK_THREADS), each
  /// rank's entropy stage runs on the sharded parallel deflate engine.
  CheckpointInfo write_local_checkpoint(const std::filesystem::path& dir,
                                        const Codec& codec, IoBackend* io = nullptr) const;

  /// Restores the slab written by write_local_checkpoint at `step`.
  void read_local_checkpoint(const std::filesystem::path& dir, std::uint64_t step,
                             IoBackend* io = nullptr);

  /// Serializes this rank's slab through `codec` into the peer-memory
  /// parity store at this rank's slot (refreshing the group parity) —
  /// the RAID-5-style in-memory tier of the paper's Sec. V refs
  /// [27]-[29].
  void store_checkpoint_in_memory(InMemoryCheckpointStore& store, const Codec& codec) const;

  /// Restores this rank's slab from the store; when the rank's copy was
  /// lost (fail_rank), the payload is reconstructed from its parity
  /// group. Returns true iff parity reconstruction was needed. Throws
  /// CorruptDataError when the group cannot reconstruct (double
  /// failure, or nothing stored).
  bool restore_checkpoint_from_memory(InMemoryCheckpointStore& store);

 private:
  /// dzeta/dtemp for the given slab state (with valid halos).
  void tendencies(const NdArray<double>& zeta, const NdArray<double>& temp,
                  NdArray<double>& dzeta, NdArray<double>& dtemp);
  /// Refreshes halo rows of a slab field via neighbour exchange.
  void halo_exchange(NdArray<double>& slab, int tag_base);
  /// Global streamfunction solve; fills psi_ (with halos).
  void solve_psi(const NdArray<double>& zeta_slab);

  ClimateConfig config_;
  Comm& comm_;
  std::size_t local_ny_;
  std::size_t j0_;  ///< first owned global row
  std::uint64_t step_ = 0;
  PoissonSolver poisson_;  ///< used by rank 0 only

  // Slab fields, shape {nz, local_ny + 2, nx}: row 0 and row
  // local_ny+1 are halos.
  NdArray<double> zeta_;
  NdArray<double> temp_;
  NdArray<double> psi_;
  NdArray<double> forcing_;  // owned rows only ({nz, local_ny, nx})
  NdArray<double> t_eq_;     // owned rows only

  // RK3 scratch (same halo layout).
  NdArray<double> k_zeta_, k_temp_, s_zeta_, s_temp_;
};

}  // namespace wck
