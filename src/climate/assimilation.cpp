#include "climate/assimilation.hpp"

#include "util/error.hpp"

namespace wck {

NudgingAssimilator::NudgingAssimilator(const AssimilationConfig& config)
    : config_(config), rng_(config.seed) {
  if (config.nudging_strength <= 0.0 || config.nudging_strength > 1.0) {
    throw InvalidArgumentError("assimilation: nudging strength must be in (0, 1]");
  }
  if (config.stride == 0) throw InvalidArgumentError("assimilation: stride must be >= 1");
  if (config.observation_noise < 0.0) {
    throw InvalidArgumentError("assimilation: noise must be >= 0");
  }
}

void NudgingAssimilator::assimilate(MiniClimate& model, const MiniClimate& truth) {
  if (model.temperature().shape() != truth.temperature().shape()) {
    throw InvalidArgumentError("assimilation: model and truth grids differ");
  }
  const auto& cfg = model.config();
  const std::size_t nx = cfg.nx;
  const std::size_t ny = cfg.ny;
  const std::size_t nz = cfg.nz;
  const std::size_t plane = nx * ny;

  NdArray<double> zeta = model.vorticity();
  NdArray<double> temp = model.temperature();
  const NdArray<double>& true_zeta = truth.vorticity();
  const NdArray<double>& true_temp = truth.temperature();

  // Nudge at the sensor lattice: every stride-th point horizontally on
  // every level (a radiosonde-like network).
  for (std::size_t k = 0; k < nz; ++k) {
    for (std::size_t j = 0; j < ny; j += config_.stride) {
      for (std::size_t i = 0; i < nx; i += config_.stride) {
        const std::size_t c = k * plane + j * nx + i;
        const double t_obs =
            true_temp[c] + config_.observation_noise * rng_.normal();
        const double z_obs =
            true_zeta[c] + config_.observation_noise * 0.01 * rng_.normal();
        temp[c] += config_.nudging_strength * (t_obs - temp[c]);
        zeta[c] += config_.nudging_strength * (z_obs - zeta[c]);
      }
    }
  }
  model.restore(zeta, temp, model.step_count());
  ++cycles_;
}

}  // namespace wck
