#include "climate/mini_climate.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace wck {
namespace {

constexpr double kDx = 1.0;  ///< nondimensional grid spacing
constexpr double kDy = 1.0;

/// A smooth random field that is exactly periodic on the grid: a few
/// integer-wavenumber Fourier modes with random amplitudes and phases.
void fill_periodic_smooth(std::span<double> level, std::size_t ny, std::size_t nx,
                          double amplitude, Xoshiro256& rng) {
  constexpr int kModes = 6;
  struct Mode {
    int kx, ky;
    double amp, phase;
  };
  std::array<Mode, kModes> modes;
  for (auto& m : modes) {
    m.kx = 1 + static_cast<int>(rng.bounded(3));
    m.ky = 1 + static_cast<int>(rng.bounded(3));
    if (rng.uniform() < 0.5) m.kx = -m.kx;
    m.amp = amplitude * (0.4 + 0.6 * rng.uniform());
    m.phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
  }
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      double v = 0.0;
      for (const Mode& m : modes) {
        const double arg = 2.0 * std::numbers::pi *
                               (static_cast<double>(m.kx) * static_cast<double>(i) /
                                    static_cast<double>(nx) +
                                static_cast<double>(m.ky) * static_cast<double>(j) /
                                    static_cast<double>(ny)) +
                           m.phase;
        v += m.amp * std::sin(arg);
      }
      level[j * nx + i] = v;
    }
  }
}

}  // namespace

MiniClimate::MiniClimate(const ClimateConfig& config)
    : config_(config),
      poisson_(config.ny, config.nx, kDy, kDx),
      zeta_(Shape{config.nz, config.ny, config.nx}),
      temp_(Shape{config.nz, config.ny, config.nx}),
      psi_(Shape{config.nz, config.ny, config.nx}),
      u_(Shape{config.nz, config.ny, config.nx}),
      v_(Shape{config.nz, config.ny, config.nx}),
      w_(Shape{config.nz, config.ny, config.nx}),
      pressure_(Shape{config.nz, config.ny, config.nx}),
      forcing_(Shape{config.nz, config.ny, config.nx}),
      t_eq_(Shape{config.nz, config.ny, config.nx}),
      k_zeta_(Shape{config.nz, config.ny, config.nx}),
      k_temp_(Shape{config.nz, config.ny, config.nx}),
      s_zeta_(Shape{config.nz, config.ny, config.nx}),
      s_temp_(Shape{config.nz, config.ny, config.nx}) {
  if (config.nz == 0) throw InvalidArgumentError("MiniClimate needs nz >= 1");
  if (config.dt <= 0.0) throw InvalidArgumentError("MiniClimate needs dt > 0");

  const std::size_t nx = config.nx;
  const std::size_t ny = config.ny;
  const std::size_t plane = nx * ny;
  Xoshiro256 rng(config.seed);

  for (std::size_t k = 0; k < config.nz; ++k) {
    auto zeta_k = std::span(zeta_.data() + k * plane, plane);
    fill_periodic_smooth(zeta_k, ny, nx, 0.5, rng);

    // Steady forcing: a meridionally varying jet plus a random smooth
    // component per level (keeps levels out of sync).
    auto f_k = std::span(forcing_.data() + k * plane, plane);
    fill_periodic_smooth(f_k, ny, nx, config.forcing_amplitude * 0.5, rng);
    for (std::size_t j = 0; j < ny; ++j) {
      const double jet = config.forcing_amplitude *
                         std::sin(4.0 * std::numbers::pi * static_cast<double>(j) /
                                  static_cast<double>(ny));
      for (std::size_t i = 0; i < nx; ++i) f_k[j * nx + i] += jet;
    }

    // Radiative equilibrium: warm "equator" band, cooling with height.
    const double lapse = config.nz > 1 ? 24.0 / static_cast<double>(config.nz - 1) : 0.0;
    for (std::size_t j = 0; j < ny; ++j) {
      const double merid =
          25.0 * std::cos(2.0 * std::numbers::pi * static_cast<double>(j) /
                          static_cast<double>(ny));
      for (std::size_t i = 0; i < nx; ++i) {
        t_eq_[k * plane + j * nx + i] = 288.0 + merid - lapse * static_cast<double>(k);
      }
    }

    // Temperature starts at equilibrium plus a weak smooth perturbation.
    auto t_k = std::span(temp_.data() + k * plane, plane);
    fill_periodic_smooth(t_k, ny, nx, 1.5, rng);
    for (std::size_t i = 0; i < plane; ++i) t_k[i] += t_eq_[k * plane + i];
  }
  refresh_diagnostics();
}

void MiniClimate::tendencies(const NdArray<double>& zeta, const NdArray<double>& temp,
                             NdArray<double>& dzeta, NdArray<double>& dtemp) const {
  const std::size_t nx = config_.nx;
  const std::size_t ny = config_.ny;
  const std::size_t nz = config_.nz;
  const std::size_t plane = nx * ny;

  std::vector<double> psi(plane);
  const double inv4 = 1.0 / (4.0 * kDx * kDy);

  for (std::size_t k = 0; k < nz; ++k) {
    const double* z = zeta.data() + k * plane;
    const double* t = temp.data() + k * plane;
    double* dz = dzeta.data() + k * plane;
    double* dt = dtemp.data() + k * plane;
    const double* f = forcing_.data() + k * plane;
    const double* te = t_eq_.data() + k * plane;

    poisson_.solve(std::span(z, plane), psi);

    for (std::size_t j = 0; j < ny; ++j) {
      const std::size_t jp = (j + 1) % ny;
      const std::size_t jm = (j + ny - 1) % ny;
      for (std::size_t i = 0; i < nx; ++i) {
        const std::size_t ip = (i + 1) % nx;
        const std::size_t im = (i + nx - 1) % nx;
        const auto at = [&](const double* a, std::size_t jj, std::size_t ii) {
          return a[jj * nx + ii];
        };
        const std::size_t c = j * nx + i;

        // Arakawa (1966) 9-point Jacobian J(psi, zeta): conserves energy
        // and enstrophy in space.
        const double j1 = (at(psi.data(), j, ip) - at(psi.data(), j, im)) *
                              (at(z, jp, i) - at(z, jm, i)) -
                          (at(psi.data(), jp, i) - at(psi.data(), jm, i)) *
                              (at(z, j, ip) - at(z, j, im));
        const double j2 = at(psi.data(), j, ip) * (at(z, jp, ip) - at(z, jm, ip)) -
                          at(psi.data(), j, im) * (at(z, jp, im) - at(z, jm, im)) -
                          at(psi.data(), jp, i) * (at(z, jp, ip) - at(z, jp, im)) +
                          at(psi.data(), jm, i) * (at(z, jm, ip) - at(z, jm, im));
        const double j3 = at(psi.data(), jp, ip) * (at(z, jp, i) - at(z, j, ip)) -
                          at(psi.data(), jm, im) * (at(z, j, im) - at(z, jm, i)) -
                          at(psi.data(), jp, im) * (at(z, jp, i) - at(z, j, im)) +
                          at(psi.data(), jm, ip) * (at(z, j, ip) - at(z, jm, i));
        const double jac = (j1 + j2 + j3) * inv4 / 3.0;

        const double lap_z = (at(z, j, ip) + at(z, j, im) - 2.0 * z[c]) / (kDx * kDx) +
                             (at(z, jp, i) + at(z, jm, i) - 2.0 * z[c]) / (kDy * kDy);

        double coupling = 0.0;
        if (nz > 1) {
          const double* z_up = k + 1 < nz ? zeta.data() + (k + 1) * plane : z;
          const double* z_dn = k > 0 ? zeta.data() + (k - 1) * plane : z;
          coupling = config_.vertical_coupling * (z_up[c] + z_dn[c] - 2.0 * z[c]);
        }

        dz[c] = -jac + config_.viscosity * lap_z - config_.drag * z[c] + f[c] + coupling;

        // Temperature: advection by (u, v) = (-dpsi/dy, dpsi/dx),
        // diffusion, Newtonian relaxation toward equilibrium.
        const double uu = -(at(psi.data(), jp, i) - at(psi.data(), jm, i)) / (2.0 * kDy);
        const double vv = (at(psi.data(), j, ip) - at(psi.data(), j, im)) / (2.0 * kDx);
        const double tx = (at(t, j, ip) - at(t, j, im)) / (2.0 * kDx);
        const double ty = (at(t, jp, i) - at(t, jm, i)) / (2.0 * kDy);
        const double lap_t = (at(t, j, ip) + at(t, j, im) - 2.0 * t[c]) / (kDx * kDx) +
                             (at(t, jp, i) + at(t, jm, i) - 2.0 * t[c]) / (kDy * kDy);
        dt[c] = -(uu * tx + vv * ty) + config_.thermal_diffusivity * lap_t +
                config_.thermal_relaxation * (te[c] - t[c]);
      }
    }
  }
}

void MiniClimate::step() {
  const double dt = config_.dt;
  const std::size_t n = zeta_.size();

  // SSP RK3 (Shu–Osher form).
  tendencies(zeta_, temp_, k_zeta_, k_temp_);
  for (std::size_t i = 0; i < n; ++i) {
    s_zeta_[i] = zeta_[i] + dt * k_zeta_[i];
    s_temp_[i] = temp_[i] + dt * k_temp_[i];
  }
  tendencies(s_zeta_, s_temp_, k_zeta_, k_temp_);
  for (std::size_t i = 0; i < n; ++i) {
    s_zeta_[i] = 0.75 * zeta_[i] + 0.25 * (s_zeta_[i] + dt * k_zeta_[i]);
    s_temp_[i] = 0.75 * temp_[i] + 0.25 * (s_temp_[i] + dt * k_temp_[i]);
  }
  tendencies(s_zeta_, s_temp_, k_zeta_, k_temp_);
  const double third = 1.0 / 3.0;
  for (std::size_t i = 0; i < n; ++i) {
    zeta_[i] = third * zeta_[i] + (2.0 * third) * (s_zeta_[i] + dt * k_zeta_[i]);
    temp_[i] = third * temp_[i] + (2.0 * third) * (s_temp_[i] + dt * k_temp_[i]);
  }

  ++step_;
  refresh_diagnostics();
}

void MiniClimate::run(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) step();
}

void MiniClimate::refresh_diagnostics() {
  const std::size_t nx = config_.nx;
  const std::size_t ny = config_.ny;
  const std::size_t nz = config_.nz;
  const std::size_t plane = nx * ny;

  for (std::size_t k = 0; k < nz; ++k) {
    poisson_.solve(std::span(zeta_.data() + k * plane, plane),
                   std::span(psi_.data() + k * plane, plane));
  }

  // Hydrostatic base pressure per level over ~2 scale heights, plus a
  // geostrophic perturbation proportional to psi.
  constexpr double kSurfacePressure = 101325.0;  // Pa
  constexpr double kRhoF = 50.0;                 // Pa per psi unit
  for (std::size_t k = 0; k < nz; ++k) {
    const double base =
        kSurfacePressure *
        std::exp(-2.0 * static_cast<double>(k) / static_cast<double>(std::max<std::size_t>(nz, 1)));
    const double* psi_k = psi_.data() + k * plane;
    double* p_k = pressure_.data() + k * plane;
    double* u_k = u_.data() + k * plane;
    double* v_k = v_.data() + k * plane;
    double* w_k = w_.data() + k * plane;
    for (std::size_t j = 0; j < ny; ++j) {
      const std::size_t jp = (j + 1) % ny;
      const std::size_t jm = (j + ny - 1) % ny;
      for (std::size_t i = 0; i < nx; ++i) {
        const std::size_t ip = (i + 1) % nx;
        const std::size_t im = (i + nx - 1) % nx;
        const std::size_t c = j * nx + i;
        u_k[c] = -(psi_k[jp * nx + i] - psi_k[jm * nx + i]) / (2.0 * kDy);
        v_k[c] = (psi_k[j * nx + ip] - psi_k[j * nx + im]) / (2.0 * kDx);
        p_k[c] = base + kRhoF * psi_k[c];
        if (nz > 1 && k > 0 && k + 1 < nz) {
          const double* psi_up = psi_.data() + (k + 1) * plane;
          const double* psi_dn = psi_.data() + (k - 1) * plane;
          w_k[c] = 0.01 * (psi_up[c] - psi_dn[c]);
        } else {
          w_k[c] = 0.0;
        }
      }
    }
  }
}

std::vector<MiniClimate::Field> MiniClimate::fields() {
  return {
      {"vorticity", &zeta_, true},    {"temperature", &temp_, true},
      {"pressure", &pressure_, false}, {"velocity_u", &u_, false},
      {"velocity_v", &v_, false},      {"velocity_w", &w_, false},
  };
}

void MiniClimate::restore(const NdArray<double>& vorticity, const NdArray<double>& temperature,
                          std::uint64_t step) {
  if (vorticity.shape() != zeta_.shape() || temperature.shape() != temp_.shape()) {
    throw InvalidArgumentError("MiniClimate::restore: shape mismatch");
  }
  zeta_ = vorticity;
  temp_ = temperature;
  step_ = step;
  refresh_diagnostics();
}

double MiniClimate::kinetic_energy() const {
  double e = 0.0;
  for (std::size_t i = 0; i < u_.size(); ++i) e += u_[i] * u_[i] + v_[i] * v_[i];
  return 0.5 * e;
}

double MiniClimate::enstrophy() const {
  double e = 0.0;
  for (std::size_t i = 0; i < zeta_.size(); ++i) e += zeta_[i] * zeta_[i];
  return 0.5 * e;
}

double MiniClimate::mean_temperature() const {
  double s = 0.0;
  for (const double t : temp_.values()) s += t;
  return s / static_cast<double>(temp_.size());
}

}  // namespace wck
