// MiniClimate: a from-scratch climate-model proxy standing in for NICAM
// (the paper's evaluation application; see DESIGN.md for the
// substitution rationale).
//
// Physics: a stack of nz quasi-2D atmospheric levels on a doubly
// periodic nx x ny grid.
//  * Prognostic: relative vorticity zeta_k (barotropic vorticity
//    equation with forcing, drag, viscosity and weak vertical coupling)
//    and temperature T_k (advected by the level's flow, diffused, and
//    relaxed toward a radiative-equilibrium profile).
//  * Diagnostic: streamfunction psi = inverse-Laplacian(zeta) via the
//    spectral Poisson solver, winds u = -dpsi/dy, v = dpsi/dx, a weak
//    vertical velocity w, and pressure = hydrostatic base state plus a
//    geostrophic perturbation rho * f * psi.
//
// The advection term uses the Arakawa (1966) 9-point Jacobian, which
// conserves energy and enstrophy in the spatial discretization, and SSP
// RK3 time stepping. The resulting fields are spatially smooth (the
// property the paper's wavelet front-end exploits) and chaotically
// sensitive to perturbations (the property the paper's Fig. 10 restart
// study measures).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fft/fft.hpp"
#include "ndarray/ndarray.hpp"

namespace wck {

struct ClimateConfig {
  std::size_t nx = 64;  ///< zonal points (power of two)
  std::size_t ny = 32;  ///< meridional points (power of two)
  std::size_t nz = 4;   ///< vertical levels
  double dt = 0.05;     ///< time step (nondimensional)
  double viscosity = 5e-4;       ///< nu, damps small scales
  double drag = 5e-3;            ///< mu, Ekman-like linear drag
  double forcing_amplitude = 2e-2;  ///< steady jet forcing of vorticity
  double vertical_coupling = 1e-2;  ///< kv between adjacent levels
  double thermal_diffusivity = 0.2;
  double thermal_relaxation = 1e-2;  ///< Newtonian cooling rate
  std::uint64_t seed = 2015;         ///< initial-condition seed
};

/// The model. All state arrays have shape {nz, ny, nx} (level-major).
class MiniClimate {
 public:
  explicit MiniClimate(const ClimateConfig& config);

  [[nodiscard]] const ClimateConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint64_t step_count() const noexcept { return step_; }

  /// Advances one time step (RK3) and refreshes diagnostics.
  void step();
  /// Advances `n` steps.
  void run(std::uint64_t n);

  // --- state access (shape {nz, ny, nx}) ---
  [[nodiscard]] const NdArray<double>& vorticity() const noexcept { return zeta_; }
  [[nodiscard]] const NdArray<double>& temperature() const noexcept { return temp_; }
  [[nodiscard]] const NdArray<double>& pressure() const noexcept { return pressure_; }
  [[nodiscard]] const NdArray<double>& wind_u() const noexcept { return u_; }
  [[nodiscard]] const NdArray<double>& wind_v() const noexcept { return v_; }
  [[nodiscard]] const NdArray<double>& wind_w() const noexcept { return w_; }

  /// Static vorticity forcing pattern (exposed for the distributed model
  /// so it can replicate the serial initialization exactly).
  [[nodiscard]] const NdArray<double>& forcing_pattern() const noexcept { return forcing_; }
  /// Static radiative-equilibrium temperature (same purpose).
  [[nodiscard]] const NdArray<double>& equilibrium_temperature() const noexcept {
    return t_eq_;
  }

  /// One named state array, as registered in checkpoints.
  struct Field {
    std::string name;
    NdArray<double>* array;
    bool prognostic;  ///< true: restored on restart; false: recomputed
  };

  /// All state fields (prognostic first). Pointers remain valid for the
  /// model's lifetime; writing through them is only meaningful for
  /// prognostic fields followed by refresh_diagnostics().
  [[nodiscard]] std::vector<Field> fields();

  /// Recomputes psi/u/v/w/pressure from the current prognostic state.
  /// Call after overwriting vorticity/temperature (e.g. on restart).
  void refresh_diagnostics();

  /// Overwrites the prognostic state (used by checkpoint restart) and
  /// refreshes diagnostics. Shapes must match.
  void restore(const NdArray<double>& vorticity, const NdArray<double>& temperature,
               std::uint64_t step);

  /// Domain-integrated kinetic energy 0.5 * sum(u^2 + v^2) (diagnostic;
  /// conserved by the Arakawa Jacobian in the inviscid unforced limit).
  [[nodiscard]] double kinetic_energy() const;

  /// Domain-integrated enstrophy 0.5 * sum(zeta^2).
  [[nodiscard]] double enstrophy() const;

  /// Mean temperature (tracks the relaxation target over time).
  [[nodiscard]] double mean_temperature() const;

 private:
  /// dzeta/dt and dT/dt for the given prognostic state.
  void tendencies(const NdArray<double>& zeta, const NdArray<double>& temp,
                  NdArray<double>& dzeta, NdArray<double>& dtemp) const;

  ClimateConfig config_;
  PoissonSolver poisson_;
  std::uint64_t step_ = 0;

  NdArray<double> zeta_;      // prognostic
  NdArray<double> temp_;      // prognostic
  NdArray<double> psi_;       // diagnostic
  NdArray<double> u_, v_, w_; // diagnostic
  NdArray<double> pressure_;  // diagnostic
  NdArray<double> forcing_;   // static vorticity forcing pattern
  NdArray<double> t_eq_;      // static radiative-equilibrium temperature

  // Scratch for RK stages (avoid per-step allocation).
  mutable NdArray<double> k_zeta_, k_temp_, s_zeta_, s_temp_;
};

}  // namespace wck
