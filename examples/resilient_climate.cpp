// The full resilience stack in one program: MiniClimate protected by
// asynchronous lossy checkpoints into a two-level storage hierarchy,
// with random failure injection — the paper's proposed compressor
// combined with the Sec. V ecosystem (non-blocking checkpointing [2],
// multi-level checkpointing [5][25]).
//
//   $ ./resilient_climate [--steps=400] [--failure-rate=0.2]
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "ckpt/async_writer.hpp"
#include "ckpt/codec.hpp"
#include "climate/mini_climate.hpp"
#include "multilevel/multilevel.hpp"
#include "util/rng.hpp"

using namespace wck;

namespace {

double arg_double(int argc, char** argv, const char* key, double fallback) {
  const std::string prefix = std::string("--") + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return std::strtod(arg.c_str() + prefix.size(), nullptr);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const auto total_steps = static_cast<std::uint64_t>(arg_double(argc, argv, "steps", 400));
  const double failure_rate = arg_double(argc, argv, "failure-rate", 0.2);
  constexpr std::uint64_t kCkptEvery = 25;

  ClimateConfig config;
  config.nx = 64;
  config.ny = 32;
  config.nz = 4;
  MiniClimate model(config);

  const auto dir = std::filesystem::temp_directory_path() / "wck_resilient";
  std::filesystem::remove_all(dir);

  CompressionParams params;
  params.quantizer.divisions = 128;
  const WaveletLossyCodec codec(params);

  // Level 1: every opportunity, "node-local" (survives process crashes).
  // Level 2: every 4th opportunity, "shared FS" (survives node loss).
  MultiLevelCheckpointer hierarchy(
      {
          LevelSpec{"local", dir / "local", 1, 1},
          LevelSpec{"shared", dir / "shared", 4, 2},
      },
      codec);

  // The async writer makes the local level non-blocking: the app only
  // pays for the state snapshot, not for compression or file I/O.
  AsyncCheckpointWriter async_writer(codec);

  NdArray<double> ck_zeta;
  NdArray<double> ck_temp;
  CheckpointRegistry registry;
  registry.add("vorticity", &ck_zeta);
  registry.add("temperature", &ck_temp);

  Xoshiro256 chaos(42);
  std::uint64_t recomputed = 0;
  std::size_t failures = 0;

  std::printf("resilient run: %llu steps, checkpoint every %llu, failure rate %.0f%%\n\n",
              static_cast<unsigned long long>(total_steps),
              static_cast<unsigned long long>(kCkptEvery), failure_rate * 100.0);

  while (model.step_count() < total_steps) {
    model.run(kCkptEvery);
    ck_zeta = model.vorticity();
    ck_temp = model.temperature();

    // Multi-level synchronous write (the hierarchy tracks the newest
    // checkpoint per level), plus an async off-critical-path copy to
    // demonstrate overlap.
    const auto written = hierarchy.checkpoint(registry, model.step_count());
    auto async_future = async_writer.write_async(
        dir / ("async_" + std::to_string(model.step_count()) + ".wck"), registry,
        model.step_count());
    for (const auto& w : written) {
      std::printf("  step %4llu: %-6s checkpoint, %6zu bytes (rate %.1f %%)\n",
                  static_cast<unsigned long long>(w.step), w.level.c_str(),
                  w.info.stored_bytes, w.info.compression_rate_percent());
    }

    if (chaos.uniform() < failure_rate) {
      ++failures;
      const auto partial = 1 + chaos.bounded(kCkptEvery - 1);
      model.run(partial);
      const int severity = chaos.uniform() < 0.25 ? 2 : 1;
      const auto restart = hierarchy.restart_after_failure(severity, registry);
      if (restart.has_value()) {
        const std::uint64_t rollback = model.step_count() - restart->step;
        recomputed += rollback;
        model.restore(ck_zeta, ck_temp, restart->step);
        std::printf("  ** severity-%d failure -> restart from %s @%llu "
                    "(%llu steps lost)\n",
                    severity, restart->level.c_str(),
                    static_cast<unsigned long long>(restart->step),
                    static_cast<unsigned long long>(rollback));
      } else {
        std::printf("  ** failure with no surviving checkpoint!\n");
      }
    }
    (void)async_future.get();  // surface any background write error
  }
  async_writer.drain();

  std::printf("\nfinished at step %llu with %zu failures; %llu steps recomputed "
              "(%.1f%% overhead)\n",
              static_cast<unsigned long long>(model.step_count()), failures,
              static_cast<unsigned long long>(recomputed),
              100.0 * static_cast<double>(recomputed) / static_cast<double>(total_steps));
  std::filesystem::remove_all(dir);
  return 0;
}
