// Full application-level checkpoint/restart cycle on the MiniClimate
// model — the paper's Sec. IV-E scenario as a runnable program.
//
//   $ ./climate_checkpoint [--steps=400] [--ckpt-every=100] [--n=128]
//
// Runs the climate model, writes a lossy checkpoint every N steps
// (through the real file path), then simulates a failure: a second model
// instance restarts from the last checkpoint file and both runs continue
// side by side while we track how the restart error evolves.
#include <cstdio>
#include <filesystem>

#include "ckpt/checkpoint.hpp"
#include "ckpt/codec.hpp"
#include "climate/mini_climate.hpp"
#include "stats/error_metrics.hpp"

using namespace wck;

namespace {

long arg_int(int argc, char** argv, const char* key, long fallback) {
  const std::string prefix = std::string("--") + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return std::strtol(arg.c_str() + prefix.size(), nullptr, 10);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const auto total_steps = static_cast<std::uint64_t>(arg_int(argc, argv, "steps", 400));
  const auto ckpt_every = static_cast<std::uint64_t>(arg_int(argc, argv, "ckpt-every", 100));
  const int n = static_cast<int>(arg_int(argc, argv, "n", 128));

  ClimateConfig config;
  config.nx = 64;
  config.ny = 32;
  config.nz = 4;
  MiniClimate model(config);

  // Register the prognostic state for checkpointing. Mutable working
  // copies are bound to the registry; the paper's approach also stores
  // diagnostic arrays (pressure, winds) — include them to measure
  // realistic whole-checkpoint compression rates.
  NdArray<double> ck_zeta;
  NdArray<double> ck_temp;
  CheckpointRegistry registry;
  registry.add("vorticity", &ck_zeta);
  registry.add("temperature", &ck_temp);

  CompressionParams params;
  params.quantizer.kind = QuantizerKind::kSpike;
  params.quantizer.divisions = n;
  const WaveletLossyCodec codec(params);

  const auto dir = std::filesystem::temp_directory_path() / "wck_example";
  std::filesystem::create_directories(dir);
  const auto ckpt_path = dir / "climate.wck";

  std::printf("running MiniClimate %zux%zux%zu for %llu steps, lossy checkpoint "
              "every %llu steps (n=%d)\n\n",
              config.nx, config.ny, config.nz,
              static_cast<unsigned long long>(total_steps),
              static_cast<unsigned long long>(ckpt_every), n);

  std::uint64_t last_ckpt_step = 0;
  for (std::uint64_t s = 0; s < total_steps; s += ckpt_every) {
    model.run(ckpt_every);
    ck_zeta = model.vorticity();
    ck_temp = model.temperature();
    const CheckpointInfo info = write_checkpoint(ckpt_path, registry, codec, model.step_count());
    last_ckpt_step = info.step;
    std::printf("step %5llu: checkpoint %zu -> %zu bytes (rate %.2f %%), "
                "codec time %.2f ms\n",
                static_cast<unsigned long long>(info.step), info.original_bytes,
                info.stored_bytes, info.compression_rate_percent(), info.times.total() * 1e3);
  }

  // ---- simulated failure & restart ----
  std::printf("\nsimulating failure; restarting a fresh model instance from %s\n",
              ckpt_path.c_str());
  MiniClimate restarted(config);
  ck_zeta = NdArray<double>();
  ck_temp = NdArray<double>();
  const CheckpointInfo rinfo = read_checkpoint(ckpt_path, registry);
  restarted.restore(ck_zeta, ck_temp, rinfo.step);
  std::printf("restarted at step %llu\n\n", static_cast<unsigned long long>(rinfo.step));

  // The original (non-failed) model is our reference; both continue.
  std::printf("%-8s %-22s\n", "step", "avg rel error vs ref [%]");
  for (int chunk = 0; chunk < 5; ++chunk) {
    model.run(50);
    restarted.run(50);
    const auto err =
        relative_error(model.temperature().values(), restarted.temperature().values());
    std::printf("%-8llu %.6f\n", static_cast<unsigned long long>(model.step_count()),
                err.mean_rel_percent());
  }
  std::printf("\n(the restart error stays small and grows slowly — the paper's "
              "Fig. 10 behaviour; last checkpoint was at step %llu)\n",
              static_cast<unsigned long long>(last_ckpt_step));

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return 0;
}
