// Error-bound driven compression — the capability the paper's Sec. IV-C
// names as future work ("control the errors by specifying a value, such
// as tolerable degree of errors").
//
//   $ ./error_bound_tuning
//
// Instead of hand-picking the division number n, the user states a
// tolerable mean relative error; compress_with_error_bound() finds the
// smallest sufficient n (falling back to best effort when the bound is
// unreachable).
#include <cstdio>

#include "core/compressor.hpp"
#include "core/synthetic.hpp"

int main() {
  using namespace wck;

  const auto field = make_temperature_field(Shape{256, 82, 2}, 11);
  std::printf("input: %s doubles (%zu bytes)\n\n", field.shape().to_string().c_str(),
              field.size_bytes());

  std::printf("%-14s %-10s %-12s %-16s %-10s\n", "bound [%]", "chosen n", "rate [%]",
              "achieved avg [%]", "met?");
  for (const double bound_percent : {1.0, 0.1, 0.01, 0.001, 0.00001}) {
    const auto result = compress_with_error_bound(field, bound_percent / 100.0);
    std::printf("%-14g %-10d %-12.2f %-16.6f %s\n", bound_percent, result.chosen_divisions,
                result.compressed.compression_rate_percent(),
                result.error.mean_rel_percent(), result.met_bound ? "yes" : "best effort");
  }

  std::printf("\ntighter bounds cost more space; unreachable bounds degrade "
              "gracefully to the best achievable configuration.\n");
  return 0;
}
