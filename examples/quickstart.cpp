// Quickstart: compress and decompress one floating-point mesh array.
//
//   $ ./quickstart
//
// Walks the public API end to end: build a smooth 3D field, compress it
// with the paper's pipeline (wavelet + proposed quantization + deflate),
// decompress, and report compression rate (Eq. 5) and relative errors
// (Eq. 6).
#include <cstdio>

#include "core/compressor.hpp"
#include "core/synthetic.hpp"

int main() {
  using namespace wck;

  // A temperature-like 3D array with the paper's NICAM shape
  // (1156 x 82 x 2 doubles, ~1.5 MB).
  const NdArray<double> field = make_temperature_field(Shape{1156, 82, 2}, /*seed=*/42);
  std::printf("input: %s doubles, %zu bytes\n", field.shape().to_string().c_str(),
              field.size_bytes());

  // Configure the paper's pipeline: 1-level Haar wavelet, proposed
  // (spike) quantization with n=128 divisions and d=64 spike partitions,
  // in-memory deflate as the final stage.
  CompressionParams params;
  params.quantizer.kind = QuantizerKind::kSpike;
  params.quantizer.divisions = 128;
  params.quantizer.spike_partitions = 64;
  params.entropy = EntropyMode::kDeflate;

  const WaveletCompressor compressor(params);
  const CompressedArray compressed = compressor.compress(field);
  std::printf("compressed: %zu bytes  (compression rate %.2f %%, lower is better)\n",
              compressed.data.size(), compressed.compression_rate_percent());
  std::printf("quantized %zu of %zu high-band coefficients to 1-byte indexes\n",
              compressed.quantized_count, compressed.high_count);

  std::printf("stage times:\n");
  for (const auto& [stage, seconds] : compressed.times.by_stage()) {
    std::printf("  %-16s %8.3f ms\n", stage.c_str(), seconds * 1e3);
  }

  // Decompression needs no parameters: the stream is self-describing.
  const NdArray<double> restored = WaveletCompressor::decompress(compressed.data);
  const ErrorStats err = relative_error(field.values(), restored.values());
  std::printf("relative error: avg %.5f %%, max %.5f %% (paper reports ~1.2 %% avg "
              "across all NICAM variables)\n",
              err.mean_rel_percent(), err.max_rel_percent());
  return 0;
}
