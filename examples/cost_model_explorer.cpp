// What-if explorer for checkpoint compression at scale (the paper's
// Fig. 9 methodology as an interactive tool).
//
//   $ ./cost_model_explorer [--bandwidth-gbs=20] [--mb-per-process=1.5]
//                           [--max-procs=16384] [--n=128]
//
// Measures this machine's per-process compression cost on a checkpoint
// of the given size, then answers: at what parallelism does compression
// start paying off on a storage system with the given bandwidth, and how
// much does it save at scale?
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/compressor.hpp"
#include "core/synthetic.hpp"
#include "iomodel/cost_model.hpp"

using namespace wck;

namespace {

double arg_double(int argc, char** argv, const char* key, double fallback) {
  const std::string prefix = std::string("--") + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return std::strtod(arg.c_str() + prefix.size(), nullptr);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const double bandwidth_gbs = arg_double(argc, argv, "bandwidth-gbs", 20.0);
  const double mb_per_process = arg_double(argc, argv, "mb-per-process", 1.5);
  const auto max_procs = static_cast<std::size_t>(arg_double(argc, argv, "max-procs", 16384));
  const int n = static_cast<int>(arg_double(argc, argv, "n", 128));

  // Build a per-process checkpoint of the requested size (paper-like 3D
  // aspect ratio) and measure compression on this machine.
  const auto elements = static_cast<std::size_t>(mb_per_process * 1e6 / sizeof(double));
  const std::size_t nx = std::max<std::size_t>(1, elements / (82 * 2));
  const auto field = make_temperature_field(Shape{nx, 82, 2}, 1);

  CompressionParams params;
  params.quantizer.divisions = n;
  params.entropy = EntropyMode::kDeflate;  // in-memory, the improved path
  const auto comp = WaveletCompressor(params).compress(field);

  std::printf("per-process checkpoint: %.2f MB; measured compression %.2f ms; "
              "rate %.2f %%\n",
              static_cast<double>(field.size_bytes()) / 1e6, comp.times.total() * 1e3,
              comp.compression_rate_percent());
  std::printf("storage: %.1f GB/s shared\n\n", bandwidth_gbs);

  const CheckpointCostModel model(static_cast<double>(field.size_bytes()),
                                  comp.compression_rate_percent() / 100.0, comp.times,
                                  StorageModel{bandwidth_gbs * 1e9, 0.0});

  std::printf("%-10s %-16s %-16s %-12s\n", "procs", "w/ comp [ms]", "w/o comp [ms]", "saving");
  for (std::size_t p = 64; p <= max_procs; p *= 2) {
    std::printf("%-10zu %-16.2f %-16.2f %.1f%%\n", p, model.time_with_compression(p) * 1e3,
                model.time_without_compression(p) * 1e3, model.reduction_at(p) * 100.0);
  }

  if (const auto cp = model.crosspoint()) {
    std::printf("\ncompression pays off above ~%.0f processes\n", *cp);
  } else {
    std::printf("\ncompression never pays off with these parameters\n");
  }
  std::printf("asymptotic saving: %.1f %%\n", model.asymptotic_reduction() * 100.0);
  return 0;
}
