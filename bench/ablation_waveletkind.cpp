// Ablation: wavelet family (Haar vs CDF 5/3 vs CDF 9/7).
//
// The paper uses Haar and motivates wavelets via JPEG 2000 (whose
// transforms are CDF 5/3 and 9/7); its future work asks for algorithm
// improvements. This bench answers: on climate checkpoint data, do the
// longer JPEG 2000 filters buy better rate/error than Haar, and at what
// transform cost?
#include <cstdio>

#include "bench_common.hpp"
#include "core/compressor.hpp"
#include "util/timer.hpp"

using namespace wck;
using namespace wck::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto workload = climate_workload_from_args(args);
  const int n = static_cast<int>(args.get_int("n", 128));

  print_header("Ablation: wavelet family (paper: Haar; JPEG2000: CDF 5/3, 9/7)",
               "longer filters: lower high-band energy -> lower error at "
               "similar rate, at more transform time");
  MiniClimate model(workload.config);
  model.run(workload.warmup_steps);
  const auto& temp = model.temperature();

  print_row({"wavelet", "rate [%]", "avg err [%]", "max err [%]", "wavelet [ms]"}, 15);
  for (const auto kind : {WaveletKind::kHaar, WaveletKind::kCdf53, WaveletKind::kCdf97}) {
    CompressionParams p;
    p.quantizer.kind = QuantizerKind::kSpike;
    p.quantizer.divisions = n;
    p.wavelet = kind;
    const WaveletCompressor c(p);
    // Average the transform stage over a few runs.
    StageTimes times;
    WaveletCompressor::RoundTrip rt;
    for (int r = 0; r < 3; ++r) {
      rt = c.round_trip(temp);
      times.merge(rt.compressed.times);
    }
    print_row({wavelet_kind_name(kind), fmt("%.2f", rt.compressed.compression_rate_percent()),
               fmt("%.4f", rt.error.mean_rel_percent()),
               fmt("%.4f", rt.error.max_rel_percent()),
               fmt("%.3f", times.get("wavelet") / 3 * 1e3)},
              15);
  }
  return 0;
}
