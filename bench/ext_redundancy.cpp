// Extension: in-memory checkpointing with XOR parity (paper Sec. V
// refs [27]-[29]) combined with lossy compression.
//
// Compares the memory footprint of a parity-protected in-memory
// checkpoint store when ranks store raw vs lossy-compressed state, and
// demonstrates end-to-end recovery of a failed rank's state through
// parity + lossy decode.
#include <cstdio>

#include "bench_common.hpp"
#include "ckpt/codec.hpp"
#include "core/synthetic.hpp"
#include "redundancy/xor_parity.hpp"
#include "stats/error_metrics.hpp"
#include "util/timer.hpp"

using namespace wck;
using namespace wck::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto ranks = static_cast<std::size_t>(args.get_int("ranks", 8));
  const auto group = static_cast<std::size_t>(args.get_int("group-size", 4));

  print_header("Extension: parity-protected in-memory checkpoints, raw vs lossy",
               "lossy shrinks both payloads and parity ~4-5x; single-rank "
               "recovery is exact w.r.t. the stored (lossy) state");

  const Shape shape{256, 82, 2};
  std::vector<NdArray<double>> states;
  for (std::size_t r = 0; r < ranks; ++r) {
    states.push_back(make_temperature_field(shape, 100 + r));
  }
  const std::size_t raw_bytes = states[0].size_bytes() * ranks;

  const NullCodec raw_codec;
  CompressionParams params;
  params.quantizer.divisions = 128;
  const WaveletLossyCodec lossy_codec(params);

  for (const Codec* codec : {static_cast<const Codec*>(&raw_codec),
                             static_cast<const Codec*>(&lossy_codec)}) {
    InMemoryCheckpointStore store(ranks, group);
    WallTimer encode_timer;
    for (std::size_t r = 0; r < ranks; ++r) {
      store.store(r, codec->encode(states[r]));
    }
    const double encode_s = encode_timer.seconds();

    // Fail one rank per parity group and recover everything.
    for (std::size_t g = 0; g * group < ranks; ++g) store.fail_rank(g * group);
    WallTimer recover_timer;
    double worst_err = 0.0;
    for (std::size_t r = 0; r < ranks; ++r) {
      const auto payload = store.retrieve(r);
      if (!payload.has_value()) {
        std::printf("UNEXPECTED: rank %zu unrecoverable\n", r);
        return 1;
      }
      const auto decoded = codec->decode(*payload);
      const auto err = relative_error(states[r].values(), decoded.values());
      worst_err = std::max(worst_err, err.mean_rel_percent());
    }
    const double recover_s = recover_timer.seconds();

    std::printf("%-14s store %8.1f ms | memory %8.2f MB (%.0f%% of raw state) | "
                "recover-all %7.1f ms | worst avg err %.5f %%\n",
                codec->name().c_str(), encode_s * 1e3,
                static_cast<double>(store.stored_bytes()) / 1e6,
                100.0 * static_cast<double>(store.stored_bytes()) /
                    static_cast<double>(raw_bytes),
                recover_s * 1e3, worst_err);
  }
  return 0;
}
