// Shared utilities for the figure/table reproduction harnesses: a tiny
// --key=value flag parser, aligned table printing, and the common
// "climate state after N steps" workload setup.
//
// Every bench accepts --nx/--ny/--nz/--warmup-steps so the default quick
// run (~seconds) can be scaled up toward the paper's sizes
// (--nx=128 --ny=64 --nz=23 gives the paper's ~1.5 MB per array).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "climate/mini_climate.hpp"
#include "telemetry/telemetry.hpp"

namespace wck::bench {

/// Minimal --key=value / --flag parser.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string_view arg(argv[i]);
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
        std::exit(2);
      }
      arg.remove_prefix(2);
      const auto eq = arg.find('=');
      if (eq == std::string_view::npos) {
        values_[std::string(arg)] = std::string("1");
      } else {
        values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      }
    }
  }

  [[nodiscard]] long get_int(const std::string& key, long fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::strtol(it->second.c_str(), nullptr, 10);
  }

  [[nodiscard]] double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
  }

  [[nodiscard]] std::string get_str(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  [[nodiscard]] bool has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

/// The common workload: a MiniClimate run to the paper's checkpoint
/// point (720 steps by default; one paper step simulates 1200 s of
/// climate).
struct ClimateWorkload {
  ClimateConfig config;
  std::uint64_t warmup_steps = 720;
};

[[nodiscard]] inline ClimateWorkload climate_workload_from_args(const Args& args) {
  ClimateWorkload w;
  w.config.nx = static_cast<std::size_t>(args.get_int("nx", 64));
  w.config.ny = static_cast<std::size_t>(args.get_int("ny", 32));
  w.config.nz = static_cast<std::size_t>(args.get_int("nz", 8));
  w.config.seed = static_cast<std::uint64_t>(args.get_int("seed", 2015));
  w.warmup_steps = static_cast<std::uint64_t>(args.get_int("warmup-steps", 720));
  return w;
}

/// Prints a row of fixed-width columns.
inline void print_row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

inline void print_header(const char* title, const char* paper_expectation) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("Paper expectation: %s\n", paper_expectation);
  std::printf("==============================================================\n");
}

/// Wraps a RunReport in the BENCH_*.json schema (see EXPERIMENTS.md):
///
///   { "schema": "wck-bench-record", "schema_version": 1,
///     "bench": "<name>", "report": { <wck-run-report> } }
///
/// Every bench binary that calls maybe_emit_bench_json() with
/// --bench-json[=PATH] emits one such record with the full telemetry
/// snapshot of the run, seeding the repo's perf trajectory.
[[nodiscard]] inline std::string bench_record_json(const std::string& bench_name,
                                                   telemetry::RunReport report) {
  report.capture_global();
  telemetry::Json::Object doc;
  doc["schema"] = "wck-bench-record";
  doc["schema_version"] = 1;
  doc["bench"] = bench_name;
  doc["report"] = report.to_json();
  return telemetry::Json(std::move(doc)).dump(1) + "\n";
}

/// Writes BENCH_<name>.json (or the --bench-json=PATH override) when
/// the flag is present; no-op otherwise. `report` carries whatever the
/// bench filled in (tool/params/bytes/error); global metrics and spans
/// are snapshotted here.
inline void maybe_emit_bench_json(const Args& args, const std::string& bench_name,
                                  telemetry::RunReport report) {
  if (!args.has("bench-json")) return;
  report.tool = report.tool.empty() ? "bench/" + bench_name : report.tool;
  std::string path = args.get_str("bench-json", "");
  if (path.empty() || path == "1") path = "BENCH_" + bench_name + ".json";
  telemetry::write_text_file(path, bench_record_json(bench_name, std::move(report)));
  std::printf("\nwrote bench record %s\n", path.c_str());
}

}  // namespace wck::bench
