// Extension of Fig. 6: stronger lossless baselines.
//
// The paper compares only against gzip. This bench widens the field
// with the baselines its related work points to: our from-scratch FPC
// ([17]) and an SZ-style Lorenzo error-bounded compressor (the [31][32]
// family the SZ line later standardized), plus mantissa truncation.
//
// Expectation: lossless methods (gzip, FPC) stay near the raw size;
// every lossy method trades bounded error for a several-fold reduction;
// predictive error-bounded compression (szlike) is the strongest of the
// simple comparators on smooth data — consistent with SZ/ZFP having
// superseded the wavelet+quantization design this paper explored.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "core/compressor.hpp"
#include "core/truncation.hpp"
#include "deflate/deflate.hpp"
#include "fpc/fpc.hpp"
#include "stats/error_metrics.hpp"
#include "szlike/lorenzo.hpp"
#include "zfplike/block_codec.hpp"

using namespace wck;
using namespace wck::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto workload = climate_workload_from_args(args);

  print_header("Extension: lossless and simple-lossy baselines vs the wavelet pipeline",
               "lossless (gzip, fpc) stays near raw size; lossy methods trade "
               "bounded error for several-fold size reduction");
  MiniClimate model(workload.config);
  model.run(workload.warmup_steps);
  const auto& temp = model.temperature();
  std::printf("temperature array: %s (%zu bytes)\n\n", temp.shape().to_string().c_str(),
              temp.size_bytes());

  print_row({"method", "rate [%]", "avg err [%]", "max err [%]"}, 22);

  {  // gzip
    const Bytes gz = gzip_compress(std::as_bytes(temp.values()));
    print_row({"gzip (lossless)", fmt("%.2f", compression_rate_percent(temp.size_bytes(), gz.size())),
               "0", "0"},
              22);
  }
  {  // fpc
    const Bytes f = fpc_compress(temp.values());
    print_row({"fpc (lossless)", fmt("%.2f", compression_rate_percent(temp.size_bytes(), f.size())),
               "0", "0"},
              22);
  }
  {  // fpc + deflate (stacked)
    const Bytes f = fpc_compress(temp.values());
    const Bytes fz = zlib_compress(f);
    print_row({"fpc+deflate",
               fmt("%.2f", compression_rate_percent(temp.size_bytes(), fz.size())), "0", "0"},
              22);
  }
  for (const int keep : {32, 20, 12}) {  // truncation ladder
    const Bytes t = truncation_compress(temp, keep);
    const auto back = truncation_decompress(t);
    const auto err = relative_error(temp.values(), back.values());
    print_row({"truncate keep=" + std::to_string(keep),
               fmt("%.2f", compression_rate_percent(temp.size_bytes(), t.size())),
               fmt("%.5f", err.mean_rel_percent()), fmt("%.5f", err.max_rel_percent())},
              22);
  }
  {  // SZ-style Lorenzo error-bounded comparator (the [31][32] family)
    double lo = temp.values()[0];
    double hi = lo;
    for (const double v : temp.values()) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    for (const double rel_eb : {1e-3, 1e-4}) {
      const double eb = rel_eb * (hi - lo);
      const Bytes s = szlike_compress(temp, SzLikeOptions{eb, 6});
      const auto back = szlike_decompress(s);
      const auto err = relative_error(temp.values(), back.values());
      print_row({"szlike eb=" + fmt("%g", rel_eb),
                 fmt("%.2f", compression_rate_percent(temp.size_bytes(), s.size())),
                 fmt("%.5f", err.mean_rel_percent()), fmt("%.5f", err.max_rel_percent())},
                22);
    }
  }
  for (const int precision : {14, 20}) {  // ZFP-inspired block transform
    const Bytes z = zfplike_compress(temp, ZfpLikeOptions{precision, 6});
    const auto back = zfplike_decompress(z);
    const auto err = relative_error(temp.values(), back.values());
    print_row({"zfplike p=" + std::to_string(precision),
               fmt("%.2f", compression_rate_percent(temp.size_bytes(), z.size())),
               fmt("%.5f", err.mean_rel_percent()), fmt("%.5f", err.max_rel_percent())},
              22);
  }
  for (const auto kind : {QuantizerKind::kSimple, QuantizerKind::kSpike}) {  // the paper
    CompressionParams p;
    p.quantizer.kind = kind;
    p.quantizer.divisions = 128;
    const auto rt = WaveletCompressor(p).round_trip(temp);
    print_row({kind == QuantizerKind::kSimple ? "wavelet simple n=128" : "wavelet proposed n=128",
               fmt("%.2f", rt.compressed.compression_rate_percent()),
               fmt("%.5f", rt.error.mean_rel_percent()), fmt("%.5f", rt.error.max_rel_percent())},
              22);
  }
  return 0;
}
