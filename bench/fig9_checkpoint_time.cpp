// Figure 9 reproduction: estimated overall checkpoint time at increasing
// parallelism, with the measured per-process compression breakdown
// (wavelet / quantization+encoding / temporary-file write / gzip /
// other) and the no-compression baseline.
//
// Methodology mirrors the paper's Sec. IV-D exactly: per-process
// compression stage times are *measured* on a 1.5 MB checkpoint array
// (the paper's per-process size, its exact 1156x82x2 shape by default);
// the shared-PFS I/O time is *modeled* as size*cr*P / 20 GB/s.
//
// Paper result: the with-compression line is flatter; crosspoint around
// P = 768; ~55 % cost reduction at P = 2048, approaching 81 % (=1-cr)
// asymptotically. Most compression time is gzip through temp files.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/compressor.hpp"
#include "core/synthetic.hpp"
#include "iomodel/cost_model.hpp"

using namespace wck;
using namespace wck::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  // Default: the paper's exact per-process array shape (1.5 MB).
  const auto nx = static_cast<std::size_t>(args.get_int("nx", 1156));
  const auto ny = static_cast<std::size_t>(args.get_int("ny", 82));
  const auto nz = static_cast<std::size_t>(args.get_int("nz", 2));
  const double bandwidth = args.get_double("bandwidth-gbs", 20.0) * 1e9;
  const int repeats = static_cast<int>(args.get_int("repeats", 5));
  // --threads=N runs the gzip stage on the sharded parallel deflate
  // engine (0 keeps the paper's serial implementation, unless
  // WCK_THREADS overrides it — see src/deflate/parallel.hpp).
  const int threads = static_cast<int>(args.get_int("threads", 0));

  print_header("Figure 9: overall checkpoint time vs parallelism",
               "flatter with-compression line; crosspoint ~768 procs; "
               "~55% reduction at P=2048; 81% asymptotic");

  // The whole point of this bench is the per-stage breakdown, which now
  // lives in the telemetry histograms — make sure they are recording.
  telemetry::set_enabled(true);

  const auto field = make_temperature_field(Shape{nx, ny, nz}, 2015);
  std::printf("per-process checkpoint: %zu bytes (%.2f MB), PFS %.0f GB/s\n\n",
              field.size_bytes(), static_cast<double>(field.size_bytes()) / 1e6,
              bandwidth / 1e9);

  // Measure per-process compression with the paper's implementation
  // (temp-file gzip); median-ish by averaging over repeats.
  CompressionParams params;
  params.quantizer.kind = QuantizerKind::kSpike;
  params.quantizer.divisions = 128;
  params.entropy = EntropyMode::kTempFileGzip;
  params.threads = threads;
  const WaveletCompressor compressor(params);

  double rate = 0.0;
  std::size_t compressed_bytes = 0;
  std::size_t payload_bytes = 0;
  for (int r = 0; r < repeats; ++r) {
    const auto comp = compressor.compress(field);
    rate = comp.compression_rate_percent() / 100.0;
    compressed_bytes = comp.data.size();
    payload_bytes = comp.payload_bytes;
  }

  // Per-stage averages come straight from the telemetry histograms the
  // pipeline recorded (mean = sum over `repeats` calls / count); no
  // bench-local timing map needed.
  const auto snapshot = telemetry::MetricsRegistry::global().snapshot();
  StageTimes avg;
  for (const char* stage : {"wavelet", "quantize_encode", "temp_file_write", "gzip", "other"}) {
    const auto it = snapshot.histograms.find(std::string("stage.") + stage + ".seconds");
    if (it != snapshot.histograms.end()) avg.add_local(stage, it->second.mean);
  }

  std::printf("measured per-process compression breakdown (avg of %d runs):\n", repeats);
  for (const auto& [stage, seconds] : avg.by_stage()) {
    std::printf("  %-18s %8.3f ms\n", stage.c_str(), seconds * 1e3);
  }
  std::printf("  %-18s %8.3f ms\n", "total", avg.total() * 1e3);
  std::printf("measured compression rate: %.2f %% (paper: 19 %%)\n\n", rate * 100.0);

  const CheckpointCostModel model(static_cast<double>(field.size_bytes()), rate, avg,
                                  StorageModel{bandwidth, 0.0});

  print_row({"P", "w/ comp [ms]", "w/o comp [ms]", "io w/ [ms]", "reduction"}, 15);
  for (std::size_t p = 256; p <= 2048; p += 256) {
    const auto rows = model.sweep({p});
    print_row({std::to_string(p), fmt("%.2f", rows[0].with_compression_s * 1e3),
               fmt("%.2f", rows[0].without_compression_s * 1e3),
               fmt("%.2f", rows[0].io_s * 1e3),
               fmt("%.1f%%", model.reduction_at(p) * 100.0)},
              15);
  }

  if (const auto cp = model.crosspoint()) {
    std::printf("\ncrosspoint: compression pays off above P = %.0f (paper: ~768)\n", *cp);
  }
  std::printf("asymptotic reduction: %.1f %% (paper: ~81 %%)\n",
              model.asymptotic_reduction() * 100.0);

  telemetry::RunReport report;
  report.tool = "bench/fig9_checkpoint_time";
  report.params["nx"] = std::to_string(nx);
  report.params["ny"] = std::to_string(ny);
  report.params["nz"] = std::to_string(nz);
  report.params["repeats"] = std::to_string(repeats);
  report.params["bandwidth_gbs"] = fmt("%.1f", bandwidth / 1e9);
  // Only stamp the param when parallel deflate is on: the serial run
  // must keep the exact baseline params the regression gate matches on.
  if (threads != 0) report.params["threads"] = std::to_string(threads);
  report.original_bytes = field.size_bytes();
  report.compressed_bytes = compressed_bytes;
  report.payload_bytes = payload_bytes;
  maybe_emit_bench_json(args, "fig9_checkpoint_time", std::move(report));
  return 0;
}
