// Extension: measured (not only modeled) weak scaling of per-rank
// compression via the RankSet simulated-rank harness.
//
// The paper asserts compression is embarrassingly parallel across
// processes (Sec. IV-D). Here R simulated ranks each compress their own
// deterministic 1.5 MB state concurrently on a thread pool; aggregate
// throughput should scale with cores while per-rank cost stays flat.
#include <cstdio>

#include "bench_common.hpp"
#include "core/compressor.hpp"
#include "core/synthetic.hpp"
#include "parallel/rank_set.hpp"
#include "util/timer.hpp"

using namespace wck;
using namespace wck::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto max_ranks = static_cast<std::size_t>(args.get_int("max-ranks", 16));
  const auto nx = static_cast<std::size_t>(args.get_int("nx", 1156));
  const auto ny = static_cast<std::size_t>(args.get_int("ny", 82));
  const auto nz = static_cast<std::size_t>(args.get_int("nz", 2));

  print_header("Extension: measured per-rank compression weak scaling",
               "per-rank time ~flat; aggregate bytes/s scales with cores");

  CompressionParams params;
  params.quantizer.divisions = 128;
  const WaveletCompressor compressor(params);

  print_row({"ranks", "wall [ms]", "per-rank [ms]", "aggregate [MB/s]", "mean rate [%]"}, 18);
  for (std::size_t ranks = 1; ranks <= max_ranks; ranks *= 2) {
    RankSet set(ranks);
    WallTimer timer;
    const auto rates = set.map<double>([&](std::size_t r) {
      // Each rank owns a distinct deterministic state (seeded by rank).
      const auto field = make_temperature_field(Shape{nx, ny, nz}, 1000 + r);
      return compressor.compress(field).compression_rate_percent();
    });
    const double wall = timer.seconds();
    double mean_rate = 0.0;
    for (const double r : rates) mean_rate += r;
    mean_rate /= static_cast<double>(ranks);
    const double bytes = static_cast<double>(ranks) * static_cast<double>(nx * ny * nz * 8);
    print_row({std::to_string(ranks), fmt("%.1f", wall * 1e3),
               fmt("%.1f", wall * 1e3 / static_cast<double>(ranks)),
               fmt("%.1f", bytes / wall / 1e6), fmt("%.2f", mean_rate)},
              18);
  }
  std::printf("\n(hardware threads on this host: %zu — scaling saturates there)\n",
              static_cast<std::size_t>(std::thread::hardware_concurrency()));
  return 0;
}
