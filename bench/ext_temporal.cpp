// Extension: temporal (inter-checkpoint delta) compression.
//
// The paper compresses each checkpoint independently and dismisses
// incremental (dirty-block) checkpointing because CFD state changes
// everywhere. Temporal *lossy-delta* compression splits the difference:
// it exploits inter-checkpoint correlation even when every value
// changed, by compressing state_t - reconstruction_{t-1} through the
// same wavelet pipeline.
//
// Expectation: delta checkpoints land several-fold below independent
// ones, shrinking further for shorter checkpoint intervals (more
// correlation); reconstruction error stays flat along the chain.
#include <cstdio>

#include "bench_common.hpp"
#include "core/temporal.hpp"
#include "stats/error_metrics.hpp"

using namespace wck;
using namespace wck::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto workload = climate_workload_from_args(args);
  const int checkpoints = static_cast<int>(args.get_int("checkpoints", 8));

  print_header("Extension: temporal lossy-delta compression between checkpoints",
               "deltas ~2x smaller than independent checkpoints at a bounded, "
               "chain-position-independent error; gain shrinks as the "
               "interval grows (less correlation)");

  for (const std::uint64_t interval : {10ull, 50ull, 200ull}) {
    MiniClimate model(workload.config);
    model.run(workload.warmup_steps);

    TemporalParams params;
    params.base.quantizer.divisions = 128;
    params.key_every = 1000;  // one key, then deltas
    TemporalCompressor tc(params);

    std::printf("checkpoint interval %llu steps:\n",
                static_cast<unsigned long long>(interval));
    print_row({"ckpt#", "kind", "bytes", "rate [%]", "avg err [%]"}, 13);
    for (int c = 0; c < checkpoints; ++c) {
      const auto& state = model.temperature();
      const auto rec = tc.add(state);
      const auto err = relative_error(state.values(), tc.last_reconstruction().values());
      print_row({std::to_string(c), rec.is_key ? "key" : "delta",
                 std::to_string(rec.data.size()),
                 fmt("%.2f", 100.0 * static_cast<double>(rec.data.size()) /
                                 static_cast<double>(rec.original_bytes)),
                 fmt("%.4f", err.mean_rel_percent())},
                13);
      model.run(interval);
    }
    std::printf("\n");
  }
  return 0;
}
