// Extension: multi-level checkpointing with lossy compression under
// injected failures — the paper's concluding integration plan
// ("combine with other efforts ... harnessing storage hierarchy").
//
// Runs MiniClimate with a two-level hierarchy (frequent local lossy
// checkpoints + rare shared checkpoints), injects failures of both
// severities, and reports which level served each restart and how many
// steps of work each failure cost.
#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "ckpt/codec.hpp"
#include "multilevel/multilevel.hpp"
#include "util/rng.hpp"

using namespace wck;
using namespace wck::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  auto workload = climate_workload_from_args(args);
  const auto total = static_cast<std::uint64_t>(args.get_int("steps", 600));
  const auto opportunity = static_cast<std::uint64_t>(args.get_int("ckpt-every", 20));

  print_header("Extension: two-level checkpoint hierarchy with failure injection",
               "mild failures restart from the newest local checkpoint (small "
               "rollback); severe failures fall back to shared (larger rollback)");

  const auto dir = std::filesystem::temp_directory_path() / "wck_multilevel_bench";
  std::filesystem::remove_all(dir);

  CompressionParams params;
  params.quantizer.divisions = 128;
  const WaveletLossyCodec codec(params);
  MultiLevelCheckpointer ml(
      {
          LevelSpec{"local", dir / "l1", 1, 1},
          LevelSpec{"shared", dir / "l2", 4, 2},
      },
      codec);

  MiniClimate model(workload.config);
  NdArray<double> zeta;
  NdArray<double> temp;
  CheckpointRegistry reg;
  reg.add("vorticity", &zeta);
  reg.add("temperature", &temp);

  Xoshiro256 rng(workload.config.seed);
  std::uint64_t lost_steps = 0;
  std::size_t failures = 0;

  print_row({"event", "step", "detail"}, 18);
  while (model.step_count() < total) {
    model.run(opportunity);
    zeta = model.vorticity();
    temp = model.temperature();
    const auto written = ml.checkpoint(reg, model.step_count());
    for (const auto& w : written) {
      print_row({"checkpoint", std::to_string(w.step),
                 w.level + " rate " + fmt("%.1f%%", w.info.compression_rate_percent())},
                18);
    }

    // Random failure injection: ~25% chance per opportunity, 1 in 4
    // failures is severe (node loss). The failure strikes mid-interval:
    // the model advances a random partial chunk first, which is the
    // work that will be rolled back.
    if (rng.uniform() < 0.25) {
      ++failures;
      const auto partial = 1 + rng.bounded(opportunity - 1);
      model.run(partial);
      const int severity = rng.uniform() < 0.25 ? 2 : 1;
      const auto r = ml.restart_after_failure(severity, reg);
      if (!r.has_value()) {
        print_row({"failure", std::to_string(model.step_count()),
                   "severity " + std::to_string(severity) + ": NO SURVIVING CHECKPOINT"},
                  18);
        continue;
      }
      const std::uint64_t rollback = model.step_count() - r->step;
      lost_steps += rollback;
      model.restore(zeta, temp, r->step);
      print_row({"failure", std::to_string(model.step_count()),
                 "severity " + std::to_string(severity) + " -> restart from " + r->level +
                     " @" + std::to_string(r->step) + " (rolled back " +
                     std::to_string(rollback) + " steps)"},
                18);
    }
  }

  std::printf("\nrun complete: %zu failures, %llu steps of recomputation "
              "(%.1f%% of %llu total)\n",
              failures, static_cast<unsigned long long>(lost_steps),
              100.0 * static_cast<double>(lost_steps) / static_cast<double>(total),
              static_cast<unsigned long long>(total));
  std::filesystem::remove_all(dir);
  return 0;
}
