// SIMD kernel-layer throughput microbench: every src/simd/ kernel timed
// at the scalar reference level and at each runtime-dispatchable vector
// level (SSE2/AVX2 when the CPU has them), reporting MB/s and the
// best-level speedup over scalar.
//
// Before timing, each vector level's output is checked byte-identical
// to the scalar reference on the same input — the bench refuses to
// report a throughput number for a kernel that is not bit-exact.
//
// Emits a wck-bench-record (--bench-json[=PATH]) with per-level gauges
// (kernel.<name>.<level>.mbps) and per-kernel best-over-scalar speedups
// in report.params (speedup_<name>). check_bench_regress.py treats a
// record carrying simd_best_level as self-baselining: on vector-capable
// hardware at least --simd-min-kernels kernels must clear
// --simd-speedup (default 2 kernels at >= 1.5x).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "simd/dispatch.hpp"

using namespace wck;
using namespace wck::bench;

namespace {

/// Best-of-N wall time for fn() (best-of, not mean: throughput benches
/// want the least-disturbed run).
template <typename Fn>
double best_seconds(int repeats, const Fn& fn) {
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (r == 0 || dt < best) best = dt;
  }
  return best;
}

double mbps(std::size_t bytes, double seconds) {
  return seconds > 0.0 ? static_cast<double>(bytes) / 1e6 / seconds : 0.0;
}

/// Inputs shared by every kernel: one realistic double buffer (smooth
/// field + spikes + denormals, like a wavelet high band) plus the
/// derived quantizer/bitmap/byte views.
struct Workload {
  std::vector<double> values;       // n doubles
  std::vector<std::byte> bytes;     // n*8 bytes (LE-packed values)
  double lo = 0.0;
  double inv_width = 0.0;
  std::int32_t divisions = 256;
  std::vector<std::int32_t> cls;    // classification (>=0 quantized)
  std::vector<std::uint64_t> words; // packed bitmap of cls
  std::vector<double> averages;     // divisions bin centers
  std::vector<std::uint8_t> indices;
  std::vector<double> exact;
};

Workload make_workload(std::size_t n, std::uint64_t seed) {
  Workload w;
  w.values.resize(n);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> noise(-1.0, 1.0);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    double v = 0.01 * noise(rng);  // narrow band, like wavelet detail
    const double roll = unit(rng);
    if (roll < 0.02) v = 50.0 * noise(rng);     // spike (exact-kept)
    if (roll > 0.999) v = 4.9e-324 * (1 + (i & 7));  // denormal
    w.values[i] = v;
  }

  const simd::KernelTable& scalar = simd::kernels_for(simd::Level::kScalar);
  w.bytes.resize(n * 8);
  if (n > 0) scalar.pack_f64_le(w.values.data(), n, w.bytes.data());

  double mn = 0.0, mx = 0.0;
  if (n > 0) scalar.range_min_max(w.values.data(), n, &mn, &mx);
  // Quantize a narrow interior window so both quantized and clamped
  // classifications occur, as the spike quantizer produces.
  w.lo = -0.01;
  w.inv_width = static_cast<double>(w.divisions) / 0.02;
  w.cls.resize(n);
  if (n > 0) scalar.grid_index_batch(w.values.data(), n, w.lo, w.inv_width, w.divisions,
                                     w.cls.data());
  // Mark spikes unquantized so the bitmap/select kernels see a mixed map.
  for (std::size_t i = 0; i < n; ++i) {
    if (w.values[i] < w.lo || w.values[i] > w.lo + 0.02) w.cls[i] = -1;
  }
  w.words.resize((n + 63) / 64);
  if (n > 0) scalar.bitmap_pack_ge0(w.cls.data(), n, w.words.data());
  w.averages.resize(static_cast<std::size_t>(w.divisions));
  for (std::size_t i = 0; i < w.averages.size(); ++i) {
    w.averages[i] = w.lo + (static_cast<double>(i) + 0.5) / w.inv_width;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (w.cls[i] >= 0) {
      w.indices.push_back(static_cast<std::uint8_t>(w.cls[i]));
    } else {
      w.exact.push_back(w.values[i]);
    }
  }
  return w;
}

/// One timed kernel: run() executes a single pass over `bytes` of
/// input; identical(level) must return true before that level is timed.
struct KernelBench {
  std::string name;
  std::size_t bytes;
  std::function<void(const simd::KernelTable&)> run;
  std::function<bool(const simd::KernelTable&)> identical;
};

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("n", 1 << 20));
  const int repeats = static_cast<int>(args.get_int("repeats", 5));
  const int inner = static_cast<int>(args.get_int("inner", 8));

  print_header("micro: SIMD kernel throughput, scalar vs dispatched levels",
               "vector levels bit-identical to scalar; >= 1.5x speedup on "
               ">= 2 kernels on AVX2 hardware");
  telemetry::set_enabled(true);

  const Workload w = make_workload(n, 2015);
  const std::vector<simd::Level> levels = simd::available_levels();
  const simd::Level best = levels.back();
  std::printf("n = %zu doubles (%zu MB), repeats = %d (best-of), inner = %d\n", n,
              n * 8 / (1u << 20), repeats, inner);
  std::printf("detected best level: %s, timing:", simd::to_string(best));
  for (const simd::Level lv : levels) std::printf(" %s", simd::to_string(lv));
  std::printf("\n\n");

  telemetry::RunReport report;
  report.tool = "bench/micro_kernels";
  report.params["n"] = std::to_string(n);
  report.params["repeats"] = std::to_string(repeats);
  report.params["inner"] = std::to_string(inner);
  report.params["simd_best_level"] = simd::to_string(best);

  const simd::KernelTable& ref = simd::kernels_for(simd::Level::kScalar);
  const std::size_t pairs = n / 2;

  // Scratch shared by the run() lambdas (allocated once, outside timing).
  std::vector<double> low(pairs), high(pairs), dbl(n);
  std::vector<std::int32_t> idx(n);
  std::vector<std::uint64_t> words(w.words.size());
  std::vector<std::byte> packed(n * 8);
  std::vector<double> ref_dbl(n);
  std::vector<std::byte> ref_packed(n * 8);

  std::vector<KernelBench> benches;
  benches.push_back(
      {"haar_forward", pairs * 2 * 8,
       [&](const simd::KernelTable& k) {
         k.haar_forward_pairs(w.values.data(), low.data(), high.data(), pairs);
       },
       [&](const simd::KernelTable& k) {
         std::vector<double> l2(pairs), h2(pairs);
         ref.haar_forward_pairs(w.values.data(), l2.data(), h2.data(), pairs);
         k.haar_forward_pairs(w.values.data(), low.data(), high.data(), pairs);
         return std::memcmp(low.data(), l2.data(), pairs * 8) == 0 &&
                std::memcmp(high.data(), h2.data(), pairs * 8) == 0;
       }});
  benches.push_back(
      {"haar_inverse", pairs * 2 * 8,
       [&](const simd::KernelTable& k) {
         k.haar_inverse_pairs(low.data(), high.data(), dbl.data(), pairs);
       },
       [&](const simd::KernelTable& k) {
         ref.haar_forward_pairs(w.values.data(), low.data(), high.data(), pairs);
         ref.haar_inverse_pairs(low.data(), high.data(), ref_dbl.data(), pairs);
         k.haar_inverse_pairs(low.data(), high.data(), dbl.data(), pairs);
         return std::memcmp(dbl.data(), ref_dbl.data(), pairs * 2 * 8) == 0;
       }});
  benches.push_back(
      {"range_min_max", n * 8,
       [&](const simd::KernelTable& k) {
         double mn, mx;
         k.range_min_max(w.values.data(), n, &mn, &mx);
       },
       [&](const simd::KernelTable& k) {
         double mn1, mx1, mn2, mx2;
         ref.range_min_max(w.values.data(), n, &mn1, &mx1);
         k.range_min_max(w.values.data(), n, &mn2, &mx2);
         return std::memcmp(&mn1, &mn2, 8) == 0 && std::memcmp(&mx1, &mx2, 8) == 0;
       }});
  benches.push_back(
      {"grid_index", n * 8,
       [&](const simd::KernelTable& k) {
         k.grid_index_batch(w.values.data(), n, w.lo, w.inv_width, w.divisions, idx.data());
       },
       [&](const simd::KernelTable& k) {
         std::vector<std::int32_t> i2(n);
         ref.grid_index_batch(w.values.data(), n, w.lo, w.inv_width, w.divisions, i2.data());
         k.grid_index_batch(w.values.data(), n, w.lo, w.inv_width, w.divisions, idx.data());
         return std::memcmp(idx.data(), i2.data(), n * 4) == 0;
       }});
  benches.push_back(
      {"bitmap_pack", n * 4,
       [&](const simd::KernelTable& k) { k.bitmap_pack_ge0(w.cls.data(), n, words.data()); },
       [&](const simd::KernelTable& k) {
         std::vector<std::uint64_t> w2(words.size());
         ref.bitmap_pack_ge0(w.cls.data(), n, w2.data());
         k.bitmap_pack_ge0(w.cls.data(), n, words.data());
         return std::memcmp(words.data(), w2.data(), words.size() * 8) == 0;
       }});
  benches.push_back(
      {"bitmap_select", n * 8,
       [&](const simd::KernelTable& k) {
         k.bitmap_select(w.words.data(), n, w.averages.data(), w.indices.data(), w.exact.data(),
                         dbl.data());
       },
       [&](const simd::KernelTable& k) {
         ref.bitmap_select(w.words.data(), n, w.averages.data(), w.indices.data(),
                           w.exact.data(), ref_dbl.data());
         k.bitmap_select(w.words.data(), n, w.averages.data(), w.indices.data(), w.exact.data(),
                         dbl.data());
         return std::memcmp(dbl.data(), ref_dbl.data(), n * 8) == 0;
       }});
  benches.push_back(
      {"pack_f64", n * 8,
       [&](const simd::KernelTable& k) { k.pack_f64_le(w.values.data(), n, packed.data()); },
       [&](const simd::KernelTable& k) {
         ref.pack_f64_le(w.values.data(), n, ref_packed.data());
         k.pack_f64_le(w.values.data(), n, packed.data());
         return std::memcmp(packed.data(), ref_packed.data(), n * 8) == 0;
       }});
  benches.push_back(
      {"unpack_f64", n * 8,
       [&](const simd::KernelTable& k) { k.unpack_f64_le(w.bytes.data(), n, dbl.data()); },
       [&](const simd::KernelTable& k) {
         ref.unpack_f64_le(w.bytes.data(), n, ref_dbl.data());
         k.unpack_f64_le(w.bytes.data(), n, dbl.data());
         return std::memcmp(dbl.data(), ref_dbl.data(), n * 8) == 0;
       }});
  benches.push_back(
      {"crc32", n * 8,
       [&](const simd::KernelTable& k) {
         (void)k.crc32_update(0xFFFFFFFFu,
                              reinterpret_cast<const unsigned char*>(w.bytes.data()),
                              w.bytes.size());
       },
       [&](const simd::KernelTable& k) {
         const auto* p = reinterpret_cast<const unsigned char*>(w.bytes.data());
         return k.crc32_update(0xFFFFFFFFu, p, w.bytes.size()) ==
                ref.crc32_update(0xFFFFFFFFu, p, w.bytes.size());
       }});
  benches.push_back(
      {"adler32", n * 8,
       [&](const simd::KernelTable& k) {
         std::uint32_t a = 1, b = 0;
         k.adler32_update(&a, &b, reinterpret_cast<const unsigned char*>(w.bytes.data()),
                          w.bytes.size());
       },
       [&](const simd::KernelTable& k) {
         const auto* p = reinterpret_cast<const unsigned char*>(w.bytes.data());
         std::uint32_t a1 = 1, b1 = 0, a2 = 1, b2 = 0;
         ref.adler32_update(&a1, &b1, p, w.bytes.size());
         k.adler32_update(&a2, &b2, p, w.bytes.size());
         return a1 == a2 && b1 == b2;
       }});

  std::printf("%-15s", "kernel");
  for (const simd::Level lv : levels)
    std::printf(" %12s", (std::string(simd::to_string(lv)) + " MB/s").c_str());
  std::printf(" %9s\n", "speedup");

  int fast_kernels = 0;
  for (const KernelBench& kb : benches) {
    std::printf("%-15s", kb.name.c_str());
    double scalar_mbps = 0.0, best_mbps = 0.0;
    for (const simd::Level lv : levels) {
      const simd::KernelTable& k = simd::kernels_for(lv);
      if (!kb.identical(k)) {
        std::fprintf(stderr, "\nFATAL: kernel %s at level %s is not bit-identical to scalar\n",
                     kb.name.c_str(), simd::to_string(lv));
        return 1;
      }
      const double secs = best_seconds(repeats, [&] {
                            for (int i = 0; i < inner; ++i) kb.run(k);
                          }) /
                          inner;
      const double rate = mbps(kb.bytes, secs);
      if (lv == simd::Level::kScalar) scalar_mbps = rate;
      if (rate > best_mbps) best_mbps = rate;
      std::printf(" %12.0f", rate);
      WCK_GAUGE_SET("kernel." + kb.name + "." + std::string(simd::to_string(lv)) + ".mbps", rate);
    }
    const double speedup = scalar_mbps > 0.0 ? best_mbps / scalar_mbps : 0.0;
    std::printf(" %8.2fx\n", speedup);
    if (speedup >= 1.5) ++fast_kernels;
    report.params["speedup_" + kb.name] = fmt("%.3f", speedup);
  }
  std::printf("\n%d of %zu kernels at >= 1.5x over scalar (gate on %s hardware: >= 2)\n",
              fast_kernels, benches.size(), simd::to_string(best));

  report.original_bytes = n * 8;
  maybe_emit_bench_json(args, "micro_kernels", std::move(report));
  return 0;
}
