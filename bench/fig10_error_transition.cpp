// Figure 10 reproduction: the transition of the relative error with
// application time steps after restarting from a lossy checkpoint.
//
// Protocol (paper Sec. IV-E): run the model for 720 steps, write a lossy
// checkpoint, restart from it, run 1500 more steps, and at every
// sampling point compare the temperature array against an undisturbed
// reference run. Repeated for simple and proposed quantization.
//
// Paper result: errors random-walk upward slowly; the proposed
// quantization stays below the simple one; simple fluctuates more.
#include <cstdio>

#include "bench_common.hpp"
#include "ckpt/checkpoint.hpp"
#include "ckpt/codec.hpp"
#include "stats/error_metrics.hpp"

using namespace wck;
using namespace wck::bench;

namespace {

/// Runs the restart experiment for one quantizer; returns (step, avg
/// relative error %) samples.
std::vector<std::pair<std::uint64_t, double>> restart_run(const ClimateWorkload& workload,
                                                          QuantizerKind kind, int n, int d,
                                                          std::uint64_t extra_steps,
                                                          std::uint64_t sample_every,
                                                          MiniClimate& reference) {
  // Fresh model, deterministic same trajectory as the reference.
  MiniClimate model(workload.config);
  model.run(workload.warmup_steps);

  // Checkpoint through the full application-level path, then restart.
  CompressionParams params;
  params.quantizer.kind = kind;
  params.quantizer.divisions = n;
  params.quantizer.spike_partitions = d;
  const WaveletLossyCodec codec(params);

  NdArray<double> zeta = model.vorticity();
  NdArray<double> temp = model.temperature();
  CheckpointRegistry registry;
  registry.add("vorticity", &zeta);
  registry.add("temperature", &temp);
  const Bytes ckpt = serialize_checkpoint(registry, codec, model.step_count());

  // "Failure": restore prognostic state from the lossy checkpoint.
  NdArray<double> r_zeta(zeta.shape());
  NdArray<double> r_temp(temp.shape());
  CheckpointRegistry restart_registry;
  restart_registry.add("vorticity", &r_zeta);
  restart_registry.add("temperature", &r_temp);
  const CheckpointInfo info = restore_checkpoint(ckpt, restart_registry);
  model.restore(r_zeta, r_temp, info.step);

  std::vector<std::pair<std::uint64_t, double>> samples;
  for (std::uint64_t s = 0; s < extra_steps; s += sample_every) {
    model.run(sample_every);
    reference.run(sample_every);
    const auto err =
        relative_error(reference.temperature().values(), model.temperature().values());
    samples.emplace_back(model.step_count(), err.mean_rel_percent());
  }
  return samples;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto workload = climate_workload_from_args(args);
  const auto extra = static_cast<std::uint64_t>(args.get_int("extra-steps", 1500));
  const auto every = static_cast<std::uint64_t>(args.get_int("sample-every", 50));
  const int n = static_cast<int>(args.get_int("n", 128));
  const int d = static_cast<int>(args.get_int("d", 64));

  print_header("Figure 10: relative error transition after lossy restart",
               "errors random-walk upward slowly; proposed < simple; "
               "simple fluctuates more");
  std::printf("workload: MiniClimate %zux%zux%zu, checkpoint at step %llu, "
              "restart + %llu steps, n=%d, d=%d\n\n",
              workload.config.nx, workload.config.ny, workload.config.nz,
              static_cast<unsigned long long>(workload.warmup_steps),
              static_cast<unsigned long long>(extra), n, d);

  // One reference trajectory per quantizer (references must stay in
  // lockstep with their restarted twin).
  MiniClimate ref_simple(workload.config);
  ref_simple.run(workload.warmup_steps);
  MiniClimate ref_spike(workload.config);
  ref_spike.run(workload.warmup_steps);

  const auto simple =
      restart_run(workload, QuantizerKind::kSimple, n, d, extra, every, ref_simple);
  const auto spike = restart_run(workload, QuantizerKind::kSpike, n, d, extra, every, ref_spike);

  print_row({"step", "simple avg err [%]", "proposed avg err [%]"}, 22);
  for (std::size_t i = 0; i < simple.size(); ++i) {
    print_row({std::to_string(simple[i].first), fmt("%.5f", simple[i].second),
               fmt("%.5f", spike[i].second)},
              22);
  }

  double simple_final = simple.empty() ? 0.0 : simple.back().second;
  double spike_final = spike.empty() ? 0.0 : spike.back().second;
  std::printf("\nfinal errors: simple %.5f %%, proposed %.5f %%\n", simple_final, spike_final);
  return 0;
}
