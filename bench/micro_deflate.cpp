// Deflate-engine throughput microbench: serial single-stream deflate vs
// the sharded parallel engine at 1/2/4/8 workers, for both compression
// and decompression, plus the sharding ratio cost (sharded vs serial
// compressed size — each block restarts its LZ77 window, so the sharded
// container is slightly larger; the CI gate holds the drift at <= 2%).
//
// The payload is the actual checkpoint hot-path input: the formatted
// (wavelet + quantize + encode) payload of the paper's 1156x82x2
// per-process array, not synthetic bytes — compression ratio and speed
// are representative of what fig9's gzip stage sees.
//
// Emits a wck-bench-record (--bench-json[=PATH]) with throughput gauges
// (deflate.serial.compress.mbps, deflate.sharded.t<N>.compress.mbps,
// ...) and the serial/sharded byte sizes in report.params for the
// check_bench_regress.py sharded-drift gate.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/compressor.hpp"
#include "core/synthetic.hpp"
#include "deflate/deflate.hpp"
#include "deflate/parallel.hpp"
#include "encode/payload.hpp"
#include "quantize/quantizer.hpp"
#include "wavelet/transform.hpp"

using namespace wck;
using namespace wck::bench;

namespace {

/// The formatted pre-entropy payload for a field — what the pipeline
/// actually hands to deflate.
Bytes formatted_payload(const NdArray<double>& input) {
  NdArray<double> work = input;
  const int levels = 1;
  const WaveletPlan plan = WaveletPlan::create(input.shape(), levels);
  wavelet_forward(work.view(), WaveletKind::kHaar, levels);

  std::vector<double> high;
  high.reserve(plan.high_count());
  for_each_high_band(work.view(), plan.final_low_extents(),
                     [&high](double& v) { high.push_back(v); });
  const QuantizationScheme scheme = QuantizationScheme::analyze(high, QuantizerConfig{});

  LossyPayload p;
  p.shape = input.shape();
  p.levels = levels;
  p.wavelet = WaveletKind::kHaar;
  p.quantizer = QuantizerKind::kSpike;
  p.averages = scheme.averages();
  p.low_band.reserve(plan.low_count());
  for_each_low_band(work.view(), plan.final_low_extents(),
                    [&p](double& v) { p.low_band.push_back(v); });
  p.quantized = Bitmap(high.size());
  p.indices.reserve(high.size());
  for (std::size_t i = 0; i < high.size(); ++i) {
    const int idx = scheme.classify(high[i]);
    if (idx >= 0) {
      p.quantized.set(i, true);
      p.indices.push_back(static_cast<std::uint8_t>(idx));
    } else {
      p.exact_values.push_back(high[i]);
    }
  }
  return encode_payload(p);
}

double mbps(std::size_t bytes, double seconds) {
  return seconds > 0.0 ? static_cast<double>(bytes) / 1e6 / seconds : 0.0;
}

/// Best-of-N wall time for fn() (best-of, not mean: throughput benches
/// want the least-disturbed run).
template <typename Fn>
double best_seconds(int repeats, const Fn& fn) {
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (r == 0 || dt < best) best = dt;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto nx = static_cast<std::size_t>(args.get_int("nx", 1156));
  const auto ny = static_cast<std::size_t>(args.get_int("ny", 82));
  const auto nz = static_cast<std::size_t>(args.get_int("nz", 2));
  const int repeats = static_cast<int>(args.get_int("repeats", 3));
  const auto block_size = static_cast<std::size_t>(
      args.get_int("block-size", static_cast<long>(kDefaultDeflateBlockSize)));

  print_header("micro: deflate engine throughput, serial vs sharded",
               "near-linear compress scaling with threads; sharded size "
               "within 2% of serial");
  telemetry::set_enabled(true);

  const auto field = make_temperature_field(Shape{nx, ny, nz}, 2015);
  const Bytes payload = formatted_payload(field);
  std::printf("formatted payload: %zu bytes (from %zu raw), block size %zu\n\n", payload.size(),
              field.size_bytes(), block_size);

  telemetry::RunReport report;
  report.tool = "bench/micro_deflate";
  report.params["nx"] = std::to_string(nx);
  report.params["ny"] = std::to_string(ny);
  report.params["nz"] = std::to_string(nz);
  report.params["repeats"] = std::to_string(repeats);
  report.params["block_size"] = std::to_string(block_size);

  // --- serial single-stream baseline (the legacy zlib container).
  Bytes serial;
  const double serial_comp_s =
      best_seconds(repeats, [&] { serial = zlib_compress(payload, {}); });
  const double serial_decomp_s =
      best_seconds(repeats, [&] { (void)zlib_decompress(serial); });
  std::printf("%-22s %10.1f MB/s comp %10.1f MB/s decomp  (%zu bytes)\n", "serial zlib",
              mbps(payload.size(), serial_comp_s), mbps(payload.size(), serial_decomp_s),
              serial.size());
  WCK_GAUGE_SET("deflate.serial.compress.mbps", mbps(payload.size(), serial_comp_s));
  WCK_GAUGE_SET("deflate.serial.decompress.mbps", mbps(payload.size(), serial_decomp_s));

  // --- sharded engine at 1/2/4/8 workers. Identical output bytes at
  // every thread count (asserted), so size is reported once.
  Bytes sharded_reference;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                    std::size_t{8}}) {
    Bytes sharded;
    const double comp_s = best_seconds(
        repeats, [&] { sharded = sharded_deflate_compress(payload, {6, block_size, threads}); });
    const double decomp_s =
        best_seconds(repeats, [&] { (void)sharded_deflate_decompress(sharded, threads); });
    if (sharded_reference.empty()) {
      sharded_reference = sharded;
    } else if (sharded != sharded_reference) {
      std::fprintf(stderr, "FATAL: sharded output differs at %zu threads\n", threads);
      return 1;
    }
    const std::string label = "sharded t=" + std::to_string(threads);
    std::printf("%-22s %10.1f MB/s comp %10.1f MB/s decomp  (%zu bytes)\n", label.c_str(),
                mbps(payload.size(), comp_s), mbps(payload.size(), decomp_s), sharded.size());
    const std::string prefix = "deflate.sharded.t" + std::to_string(threads);
    WCK_GAUGE_SET(prefix + ".compress.mbps", mbps(payload.size(), comp_s));
    WCK_GAUGE_SET(prefix + ".decompress.mbps", mbps(payload.size(), decomp_s));
  }

  const double drift =
      static_cast<double>(sharded_reference.size()) / static_cast<double>(serial.size()) - 1.0;
  std::printf("\nsharded vs serial size: %zu vs %zu bytes (%+.2f%%, gate: <= 2%%)\n",
              sharded_reference.size(), serial.size(), drift * 100.0);
  WCK_GAUGE_SET("deflate.sharded.size_drift", drift);

  // The regress gate reads these to hold sharded-container drift <= 2%.
  report.params["serial_bytes"] = std::to_string(serial.size());
  report.params["sharded_bytes"] = std::to_string(sharded_reference.size());
  report.original_bytes = payload.size();
  report.compressed_bytes = sharded_reference.size();
  report.payload_bytes = payload.size();
  maybe_emit_bench_json(args, "micro_deflate", std::move(report));
  return 0;
}
