// Figure 8 reproduction: average relative errors under division numbers
// n = 1..128 for simple and proposed quantization (temperature array),
// plus the Sec. IV-C cross-variable average/maximum error ranges.
//
// Paper result: errors fall as n grows; proposed well below simple
// (temperature avg: simple 0.74% -> 0.025%; proposed 0.49% -> 0.0056%).
// Across all arrays at n=128: simple avg 0.0053-14.56%, max 0.048-56.84%;
// proposed avg 0.0004-1.19%, max 0.0022-5.94%.
#include <cstdio>

#include "bench_common.hpp"
#include "core/compressor.hpp"
#include "stats/error_metrics.hpp"

using namespace wck;
using namespace wck::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto workload = climate_workload_from_args(args);
  const int d = static_cast<int>(args.get_int("d", 64));

  print_header("Figure 8: average relative error vs division number n",
               "errors fall with n; proposed << simple "
               "(temperature avg: simple 0.74->0.025%, proposed 0.49->0.0056%)");
  std::printf("workload: MiniClimate %zux%zux%zu, %llu warmup steps, d=%d\n\n",
              workload.config.nx, workload.config.ny, workload.config.nz,
              static_cast<unsigned long long>(workload.warmup_steps), d);

  MiniClimate model(workload.config);
  model.run(workload.warmup_steps);

  auto error_of = [&](const NdArray<double>& a, QuantizerKind kind, int n) {
    CompressionParams p;
    p.quantizer.kind = kind;
    p.quantizer.divisions = n;
    p.quantizer.spike_partitions = d;
    return WaveletCompressor(p).round_trip(a).error;
  };

  print_row({"n", "simple avg[%]", "proposed avg[%]", "simple max[%]", "proposed max[%]"}, 17);
  for (int n = 1; n <= 128; n *= 2) {
    const auto simple = error_of(model.temperature(), QuantizerKind::kSimple, n);
    const auto spike = error_of(model.temperature(), QuantizerKind::kSpike, n);
    print_row({std::to_string(n), fmt("%.4f", simple.mean_rel_percent()),
               fmt("%.4f", spike.mean_rel_percent()), fmt("%.4f", simple.max_rel_percent()),
               fmt("%.4f", spike.max_rel_percent())},
              17);
  }

  std::printf("\nPer-variable errors at n=128 (Sec. IV-C ranges):\n\n");
  print_row({"variable", "simple avg[%]", "simple max[%]", "proposed avg[%]", "proposed max[%]"},
            16);
  for (const auto& f : model.fields()) {
    const auto simple = error_of(*f.array, QuantizerKind::kSimple, 128);
    const auto spike = error_of(*f.array, QuantizerKind::kSpike, 128);
    print_row({f.name, fmt("%.4f", simple.mean_rel_percent()),
               fmt("%.4f", simple.max_rel_percent()), fmt("%.4f", spike.mean_rel_percent()),
               fmt("%.4f", spike.max_rel_percent())},
              16);
  }
  return 0;
}
