// Ablation: the spike-detection partition count d (the paper fixes
// d = 64 without a sweep).
//
// Larger d makes spike detection finer: fewer values land in detected
// partitions (more stay exact), trading size for error. This sweep maps
// that trade-off and shows d = 64 is a reasonable middle ground.
#include <cstdio>

#include "bench_common.hpp"
#include "core/compressor.hpp"

using namespace wck;
using namespace wck::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto workload = climate_workload_from_args(args);
  const int n = static_cast<int>(args.get_int("n", 128));

  print_header("Ablation: spike partition count d (paper fixes d=64)",
               "finer d -> more exact values: lower error, larger size");
  MiniClimate model(workload.config);
  model.run(workload.warmup_steps);
  const auto& temp = model.temperature();

  print_row({"d", "rate [%]", "avg err [%]", "max err [%]", "quantized [%]"}, 15);
  for (const int d : {4, 16, 64, 256, 1024}) {
    CompressionParams p;
    p.quantizer.kind = QuantizerKind::kSpike;
    p.quantizer.divisions = n;
    p.quantizer.spike_partitions = d;
    const auto rt = WaveletCompressor(p).round_trip(temp);
    const double qfrac = rt.compressed.high_count == 0
                             ? 0.0
                             : 100.0 * static_cast<double>(rt.compressed.quantized_count) /
                                   static_cast<double>(rt.compressed.high_count);
    print_row({std::to_string(d), fmt("%.2f", rt.compressed.compression_rate_percent()),
               fmt("%.4f", rt.error.mean_rel_percent()),
               fmt("%.4f", rt.error.max_rel_percent()), fmt("%.1f", qfrac)},
              15);
  }
  return 0;
}
