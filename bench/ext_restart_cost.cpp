// Extension: restart-side costs per codec and per incremental-chain
// length.
//
// The paper (Sec. V) notes that incremental checkpointing "tends to
// increase restart costs, since the recovery requires several
// consecutive checkpoint images" — this bench quantifies that, and also
// reports plain decode times for every codec (restart latency matters
// as much as checkpoint latency once MTBF is short).
#include <cstdio>

#include "bench_common.hpp"
#include "ckpt/checkpoint.hpp"
#include "ckpt/codec.hpp"
#include "ckpt/incremental.hpp"
#include "core/synthetic.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace wck;
using namespace wck::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto nx = static_cast<std::size_t>(args.get_int("nx", 1156));
  const auto ny = static_cast<std::size_t>(args.get_int("ny", 82));
  const auto nz = static_cast<std::size_t>(args.get_int("nz", 2));
  const int repeats = static_cast<int>(args.get_int("repeats", 5));

  print_header("Extension: restart (decode) costs",
               "lossless decode ~ read speed; lossy decode adds inverse "
               "transform; incremental restart grows with chain length");

  NdArray<double> state = make_temperature_field(Shape{nx, ny, nz}, 1);
  CheckpointRegistry reg;
  reg.add("state", &state);

  std::printf("state: %s (%.2f MB)\n\n", state.shape().to_string().c_str(),
              static_cast<double>(state.size_bytes()) / 1e6);

  // --- per-codec encode/decode times ---
  const NullCodec null_codec;
  const GzipCodec gzip_codec;
  const FpcCodec fpc_codec;
  const TruncationCodec trunc_codec;
  CompressionParams params;
  params.quantizer.divisions = 128;
  const WaveletLossyCodec lossy_codec(params);

  print_row({"codec", "encode [ms]", "decode [ms]", "bytes"}, 16);
  for (const Codec* codec :
       {static_cast<const Codec*>(&null_codec), static_cast<const Codec*>(&gzip_codec),
        static_cast<const Codec*>(&fpc_codec), static_cast<const Codec*>(&trunc_codec),
        static_cast<const Codec*>(&lossy_codec)}) {
    Bytes payload;
    WallTimer enc;
    for (int r = 0; r < repeats; ++r) payload = codec->encode(state);
    const double enc_ms = enc.seconds() / repeats * 1e3;
    WallTimer dec;
    for (int r = 0; r < repeats; ++r) (void)codec->decode(payload);
    const double dec_ms = dec.seconds() / repeats * 1e3;
    print_row({codec->name(), fmt("%.2f", enc_ms), fmt("%.2f", dec_ms),
               std::to_string(payload.size())},
              16);
  }

  // --- incremental chain restart cost vs chain length ---
  std::printf("\nincremental restart vs chain length (4 KiB blocks, ~1%% of the\n");
  std::printf("state mutated between checkpoints):\n\n");
  print_row({"chain length", "restore [ms]", "chain bytes"}, 16);
  IncrementalCheckpointer inc(4096, /*full_every=*/1u << 20);
  std::vector<IncrementalCheckpoint> chain;
  Xoshiro256 rng(3);
  chain.push_back(inc.checkpoint(reg, 0));
  for (int len = 1; len <= 32; ++len) {
    for (std::size_t k = 0; k < state.size() / 100; ++k) {
      state[rng.bounded(state.size())] += 1e-3;
    }
    chain.push_back(inc.checkpoint(reg, static_cast<std::uint64_t>(len)));
    if ((len & (len - 1)) == 0) {  // powers of two
      NdArray<double> target(state.shape());
      CheckpointRegistry rreg;
      rreg.add("state", &target);
      WallTimer t;
      (void)IncrementalCheckpointer::restore_chain(chain, rreg);
      std::size_t total = 0;
      for (const auto& c : chain) total += c.data.size();
      print_row({std::to_string(chain.size()), fmt("%.2f", t.seconds() * 1e3),
                 std::to_string(total)},
                16);
    }
  }
  return 0;
}
