// Ablation: chunked (intra-process parallel) compression.
//
// The paper's Sec. II-A requires compression scalable in checkpoint
// size; chunking additionally parallelizes within one process. This
// bench maps the rate cost of chunking (per-chunk quantization tables,
// lost cross-chunk correlation) and the wall-clock effect of a pool.
#include <cstdio>
#include <thread>

#include "bench_common.hpp"
#include "core/chunked.hpp"
#include "core/synthetic.hpp"
#include "stats/error_metrics.hpp"
#include "util/timer.hpp"

using namespace wck;
using namespace wck::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto nx = static_cast<std::size_t>(args.get_int("nx", 1156));
  const auto ny = static_cast<std::size_t>(args.get_int("ny", 82));
  const auto nz = static_cast<std::size_t>(args.get_int("nz", 2));

  print_header("Ablation: chunked compression (slabs along axis 0)",
               "more chunks: slightly worse rate, same error regime; with a "
               "pool, wall time drops until the core count saturates");
  const auto field = make_temperature_field(Shape{nx, ny, nz}, 2015);
  std::printf("array: %s (%.2f MB); host threads: %u\n\n", field.shape().to_string().c_str(),
              static_cast<double>(field.size_bytes()) / 1e6,
              std::thread::hardware_concurrency());

  ThreadPool pool;
  print_row({"chunks", "rate [%]", "avg err [%]", "seq wall [ms]", "pool wall [ms]"}, 16);
  for (const std::size_t chunks : {1u, 2u, 4u, 8u, 16u}) {
    ChunkedParams p;
    p.base.quantizer.divisions = 128;
    p.chunks = chunks;

    WallTimer seq_timer;
    const auto comp = chunked_compress(field, p);
    const double seq_ms = seq_timer.seconds() * 1e3;

    WallTimer pool_timer;
    (void)chunked_compress(field, p, &pool);
    const double pool_ms = pool_timer.seconds() * 1e3;

    const auto back = chunked_decompress(comp.data);
    const auto err = relative_error(field.values(), back.values());
    print_row({std::to_string(chunks),
               fmt("%.2f", 100.0 * static_cast<double>(comp.data.size()) /
                               static_cast<double>(field.size_bytes())),
               fmt("%.4f", err.mean_rel_percent()), fmt("%.1f", seq_ms),
               fmt("%.1f", pool_ms)},
              16);
  }
  return 0;
}
