// google-benchmark micro suite: per-stage throughput and O(n) scaling.
//
// The paper claims (Sec. III) that the whole lossy pipeline is O(n) in
// the checkpoint size. Run with --benchmark_min_time or look at the
// BigO row: the wavelet, quantization+encoding and full-pipeline
// benchmarks compute a complexity fit.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <optional>
#include <string>

#include "core/compressor.hpp"
#include "telemetry/telemetry.hpp"
#include "core/synthetic.hpp"
#include "deflate/deflate.hpp"
#include "quantize/quantizer.hpp"
#include "util/env.hpp"
#include "wavelet/haar.hpp"

namespace wck {
namespace {

NdArray<double> field_of_size(std::int64_t elements) {
  // Keep the paper-like 3D aspect: x grows, 82 x 2 fixed.
  const auto nx = static_cast<std::size_t>(elements) / (82 * 2);
  return make_temperature_field(Shape{nx, 82, 2}, 7);
}

void BM_WaveletForward(benchmark::State& state) {
  auto field = field_of_size(state.range(0));
  for (auto _ : state) {
    haar_forward(field.view(), 1);
    haar_inverse(field.view(), 1);  // restore for the next iteration
    benchmark::DoNotOptimize(field.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(field.size_bytes()));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_WaveletForward)->Range(1 << 14, 1 << 20)->Complexity(benchmark::oN);

void BM_QuantizeAnalyze(benchmark::State& state) {
  const auto field = field_of_size(state.range(0));
  for (auto _ : state) {
    const auto scheme =
        QuantizationScheme::analyze_spike(field.values(), 128, 64);
    benchmark::DoNotOptimize(scheme.averages().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(field.size_bytes()));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_QuantizeAnalyze)->Range(1 << 14, 1 << 20)->Complexity(benchmark::oN);

void BM_FullPipelineCompress(benchmark::State& state) {
  const auto field = field_of_size(state.range(0));
  CompressionParams params;
  params.quantizer.divisions = 128;
  const WaveletCompressor compressor(params);
  for (auto _ : state) {
    const auto comp = compressor.compress(field);
    benchmark::DoNotOptimize(comp.data.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(field.size_bytes()));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FullPipelineCompress)->Range(1 << 14, 1 << 20)->Complexity(benchmark::oN);

void BM_FullPipelineDecompress(benchmark::State& state) {
  const auto field = field_of_size(state.range(0));
  CompressionParams params;
  params.quantizer.divisions = 128;
  const auto comp = WaveletCompressor(params).compress(field);
  for (auto _ : state) {
    const auto back = WaveletCompressor::decompress(comp.data);
    benchmark::DoNotOptimize(back.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(field.size_bytes()));
}
BENCHMARK(BM_FullPipelineDecompress)->Range(1 << 14, 1 << 20);

void BM_DeflateCompress(benchmark::State& state) {
  const auto field = field_of_size(state.range(0));
  const auto raw = std::as_bytes(field.values());
  for (auto _ : state) {
    const auto z = zlib_compress(raw, DeflateOptions{6});
    benchmark::DoNotOptimize(z.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(raw.size()));
}
BENCHMARK(BM_DeflateCompress)->Range(1 << 14, 1 << 18);

void BM_DeflateDecompress(benchmark::State& state) {
  const auto field = field_of_size(state.range(0));
  const auto z = zlib_compress(std::as_bytes(field.values()), DeflateOptions{6});
  for (auto _ : state) {
    const auto back = zlib_decompress(z);
    benchmark::DoNotOptimize(back.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(field.size_bytes()));
}
BENCHMARK(BM_DeflateDecompress)->Range(1 << 14, 1 << 18);

}  // namespace
}  // namespace wck

// Custom main instead of BENCHMARK_MAIN(): after the google-benchmark
// run, optionally emit a BENCH_*.json record from the telemetry the
// pipeline itself recorded (the full-pipeline benchmarks route through
// WaveletCompressor::compress, so the stage histograms are populated —
// no bench-local timing needed). google-benchmark owns argv, so the
// output path comes from the WCK_BENCH_JSON environment variable.
int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();

  if (const std::optional<std::string> path = wck::env::get("WCK_BENCH_JSON")) {
    wck::telemetry::RunReport report;
    report.tool = "bench/micro_stages";
    report.capture_global();
    wck::telemetry::Json::Object doc;
    doc["schema"] = "wck-bench-record";
    doc["schema_version"] = 1;
    doc["bench"] = "micro_stages";
    doc["report"] = report.to_json();
    wck::telemetry::write_text_file(*path, wck::telemetry::Json(std::move(doc)).dump(1) + "\n");
    std::printf("wrote bench record %s\n", path->c_str());
  }
  return 0;
}
