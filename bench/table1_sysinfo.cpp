// Table I reproduction: the experimental-platform specification.
//
// The paper lists its in-house cluster (Core i7-3930K, 16 GB DDR3, NFS
// v3 over RAID6). We print the equivalent description of the machine the
// reproduction runs on, plus the storage-model parameters the Fig. 9
// estimation uses.
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "simd/dispatch.hpp"

namespace {

std::string read_cpu_model() {
  std::ifstream f("/proc/cpuinfo");
  std::string line;
  while (std::getline(f, line)) {
    if (line.rfind("model name", 0) == 0) {
      const auto colon = line.find(':');
      if (colon != std::string::npos) return line.substr(colon + 2);
    }
  }
  return "(unknown CPU)";
}

double read_mem_gb() {
  std::ifstream f("/proc/meminfo");
  std::string key;
  long kb = 0;
  while (f >> key >> kb) {
    if (key == "MemTotal:") return static_cast<double>(kb) / (1024.0 * 1024.0);
    f.ignore(256, '\n');
  }
  return 0.0;
}

}  // namespace

int main() {
  std::printf("Table I: system specification (reproduction platform)\n");
  std::printf("------------------------------------------------------\n");
  std::printf("Node\n");
  std::printf("  CPU                 %s\n", read_cpu_model().c_str());
  std::printf("  Hardware threads    %u\n", std::thread::hardware_concurrency());
  std::printf("  Memory              %.1f GB\n", read_mem_gb());
  std::printf("  SIMD                %s detected, %s active (WCK_SIMD overrides)\n",
              wck::simd::to_string(wck::simd::detected_best()),
              wck::simd::to_string(wck::simd::active_level()));
  std::printf("Storage (as modeled; paper: NFS v3 on RAID6 for measurement,\n");
  std::printf("         20 GB/s parallel FS for the Fig. 9 estimation)\n");
  std::printf("  Modeled PFS bandwidth   20 GB/s\n");
  std::printf("  Checkpoint per process  1.5 MB (weak scaling)\n");
  std::printf("\nPaper's Table I for reference:\n");
  std::printf("  CPU: Intel Core i7-3930K 6 cores 3.20GHz; Memory: DDR3 16GB;\n");
  std::printf("  NIC: Broadcom bnx2; FS: NFS v3 1.5TB, Dell PERC H700 RAID6,\n");
  std::printf("  Western Digital WD2002FAEX disks.\n");
  return 0;
}
