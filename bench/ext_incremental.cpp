// Extension: the incremental-checkpointing baseline the paper dismisses
// (Sec. V refs [9-11]).
//
// Two workloads:
//  * MiniClimate — every physical array updates everywhere each step,
//    so deltas are as large as full images (the paper's argument);
//  * a sparse-update synthetic — only a small region changes between
//    checkpoints, where incremental checkpointing shines.
#include <cstdio>

#include "bench_common.hpp"
#include "ckpt/incremental.hpp"
#include "core/synthetic.hpp"
#include "util/rng.hpp"

using namespace wck;
using namespace wck::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto workload = climate_workload_from_args(args);
  const auto block = static_cast<std::size_t>(args.get_int("block-bytes", 4096));
  const int checkpoints = static_cast<int>(args.get_int("checkpoints", 6));

  print_header("Extension: incremental checkpointing (paper Sec. V baseline)",
               "climate: ~100% dirty blocks (no saving); sparse workload: tiny deltas");

  {
    std::printf("workload A: MiniClimate %zux%zux%zu, checkpoint every 10 steps\n",
                workload.config.nx, workload.config.ny, workload.config.nz);
    MiniClimate model(workload.config);
    model.run(100);

    NdArray<double> zeta = model.vorticity();
    NdArray<double> temp = model.temperature();
    CheckpointRegistry reg;
    reg.add("vorticity", &zeta);
    reg.add("temperature", &temp);

    IncrementalCheckpointer inc(block, /*full_every=*/1000);
    print_row({"ckpt#", "kind", "dirty/total", "bytes", "vs full [%]"}, 14);
    for (int c = 0; c < checkpoints; ++c) {
      zeta = model.vorticity();
      temp = model.temperature();
      const auto r = inc.checkpoint(reg, model.step_count());
      print_row({std::to_string(c), r.is_full ? "full" : "delta",
                 std::to_string(r.dirty_blocks) + "/" + std::to_string(r.total_blocks),
                 std::to_string(r.data.size()),
                 fmt("%.1f", 100.0 * static_cast<double>(r.data.size()) /
                                 static_cast<double>(r.image_bytes))},
                14);
      model.run(10);
    }
  }

  {
    std::printf("\nworkload B: localized updates (one small tile changes per checkpoint)\n");
    NdArray<double> field = make_smooth_field(Shape{128, 128}, 9);
    CheckpointRegistry reg;
    reg.add("field", &field);

    IncrementalCheckpointer inc(block, /*full_every=*/1000);
    Xoshiro256 rng(10);
    print_row({"ckpt#", "kind", "dirty/total", "bytes", "vs full [%]"}, 14);
    for (int c = 0; c < checkpoints; ++c) {
      const auto r = inc.checkpoint(reg, static_cast<std::uint64_t>(c));
      print_row({std::to_string(c), r.is_full ? "full" : "delta",
                 std::to_string(r.dirty_blocks) + "/" + std::to_string(r.total_blocks),
                 std::to_string(r.data.size()),
                 fmt("%.1f", 100.0 * static_cast<double>(r.data.size()) /
                                 static_cast<double>(r.image_bytes))},
                14);
      // Mutate one random 8x8 tile: a region-of-interest update pattern
      // (e.g. a moving front), the favourable case for incremental.
      const std::size_t ti = rng.bounded(120);
      const std::size_t tj = rng.bounded(120);
      for (std::size_t di = 0; di < 8; ++di) {
        for (std::size_t dj = 0; dj < 8; ++dj) {
          field(ti + di, tj + dj) += 0.01;
        }
      }
    }
  }
  return 0;
}
