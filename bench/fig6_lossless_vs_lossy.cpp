// Figure 6 reproduction: compression rates of gzip (lossless baseline)
// vs. the lossy pipeline with simple and proposed quantization (n = 128,
// d = 64) on the climate temperature array after 720 steps.
//
// Paper result: gzip 86.78 %; simple ~12 %; proposed ~17 % — lossless
// compression of floating-point mesh data is nearly useless while lossy
// shrinks it by ~6-8x.
#include <cstdio>

#include "bench_common.hpp"
#include "ckpt/codec.hpp"
#include "core/compressor.hpp"
#include "deflate/deflate.hpp"
#include "stats/error_metrics.hpp"

using namespace wck;
using namespace wck::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto workload = climate_workload_from_args(args);
  const int n = static_cast<int>(args.get_int("n", 128));
  const int d = static_cast<int>(args.get_int("d", 64));

  print_header("Figure 6: gzip vs lossy (simple / proposed quantization)",
               "gzip ~87%; simple ~12%; proposed ~17% (lower = better)");
  std::printf("workload: MiniClimate %zux%zux%zu, %llu warmup steps, n=%d, d=%d\n\n",
              workload.config.nx, workload.config.ny, workload.config.nz,
              static_cast<unsigned long long>(workload.warmup_steps), n, d);

  MiniClimate model(workload.config);
  model.run(workload.warmup_steps);
  const NdArray<double>& temp = model.temperature();

  // gzip baseline over the raw array bytes.
  const Bytes gz = gzip_compress(std::as_bytes(temp.values()));
  const double gzip_rate = compression_rate_percent(temp.size_bytes(), gz.size());

  auto lossy_rate = [&](QuantizerKind kind) {
    CompressionParams p;
    p.quantizer.kind = kind;
    p.quantizer.divisions = n;
    p.quantizer.spike_partitions = d;
    const auto comp = WaveletCompressor(p).compress(temp);
    return comp.compression_rate_percent();
  };

  print_row({"method", "compression rate [%]"}, 26);
  print_row({"gzip", fmt("%.2f", gzip_rate)}, 26);
  print_row({"simple quantization", fmt("%.2f", lossy_rate(QuantizerKind::kSimple))}, 26);
  print_row({"proposed quantization", fmt("%.2f", lossy_rate(QuantizerKind::kSpike))}, 26);
  return 0;
}
