// Figure 7 reproduction: compression rates under division numbers
// n = 1..128 for simple and proposed quantization (temperature array).
// Also reports the Sec. IV-C cross-variable ranges.
//
// Paper result: rates grow gently with n — simple 11.06% (n=1) to
// 12.10% (n=128); proposed 14.43% to 16.75%; other arrays 11-13%
// (simple) and 13-29% (proposed).
#include <cstdio>

#include "bench_common.hpp"
#include "core/compressor.hpp"

using namespace wck;
using namespace wck::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto workload = climate_workload_from_args(args);
  const int d = static_cast<int>(args.get_int("d", 64));

  print_header("Figure 7: compression rate vs division number n",
               "gentle growth with n; proposed above simple "
               "(simple 11.06->12.10%, proposed 14.43->16.75%)");
  std::printf("workload: MiniClimate %zux%zux%zu, %llu warmup steps, d=%d\n\n",
              workload.config.nx, workload.config.ny, workload.config.nz,
              static_cast<unsigned long long>(workload.warmup_steps), d);

  MiniClimate model(workload.config);
  model.run(workload.warmup_steps);

  auto rate = [&](const NdArray<double>& a, QuantizerKind kind, int n) {
    CompressionParams p;
    p.quantizer.kind = kind;
    p.quantizer.divisions = n;
    p.quantizer.spike_partitions = d;
    return WaveletCompressor(p).compress(a).compression_rate_percent();
  };

  print_row({"n", "simple [%]", "proposed [%]"});
  for (int n = 1; n <= 128; n *= 2) {
    print_row({std::to_string(n),
               fmt("%.2f", rate(model.temperature(), QuantizerKind::kSimple, n)),
               fmt("%.2f", rate(model.temperature(), QuantizerKind::kSpike, n))});
  }

  std::printf("\nPer-variable compression rates at n=128 (Sec. IV-C: simple 11-13%%,\n");
  std::printf("proposed 13-29%% across NICAM arrays):\n\n");
  print_row({"variable", "simple [%]", "proposed [%]"}, 16);
  for (const auto& f : model.fields()) {
    print_row({f.name, fmt("%.2f", rate(*f.array, QuantizerKind::kSimple, 128)),
               fmt("%.2f", rate(*f.array, QuantizerKind::kSpike, 128))},
              16);
  }

  if (args.has("bench-json")) {
    // Representative record: proposed quantizer at the paper's n=128 on
    // the temperature array, with full round-trip error metrics.
    CompressionParams p;
    p.quantizer.kind = QuantizerKind::kSpike;
    p.quantizer.divisions = 128;
    p.quantizer.spike_partitions = d;
    const auto rt = WaveletCompressor(p).round_trip(model.temperature());

    telemetry::RunReport report;
    report.tool = "bench/fig7_compression_rate";
    report.params["nx"] = std::to_string(workload.config.nx);
    report.params["ny"] = std::to_string(workload.config.ny);
    report.params["nz"] = std::to_string(workload.config.nz);
    report.params["d"] = std::to_string(d);
    report.params["n"] = "128";
    report.params["quantizer"] = "spike";
    report.original_bytes = rt.compressed.original_bytes;
    report.compressed_bytes = rt.compressed.data.size();
    report.payload_bytes = rt.compressed.payload_bytes;
    report.has_error_metrics = true;
    report.error.mean_rel = rt.error.mean_rel;
    report.error.max_rel = rt.error.max_rel;
    report.error.max_abs = rt.error.max_abs;
    report.error.rmse = rt.error.rmse;
    report.error.count = rt.error.count;
    maybe_emit_bench_json(args, "fig7_compression_rate", std::move(report));
  }
  return 0;
}
