// Figure 7 reproduction: compression rates under division numbers
// n = 1..128 for simple and proposed quantization (temperature array).
// Also reports the Sec. IV-C cross-variable ranges.
//
// Paper result: rates grow gently with n — simple 11.06% (n=1) to
// 12.10% (n=128); proposed 14.43% to 16.75%; other arrays 11-13%
// (simple) and 13-29% (proposed).
#include <cstdio>

#include "bench_common.hpp"
#include "core/compressor.hpp"

using namespace wck;
using namespace wck::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto workload = climate_workload_from_args(args);
  const int d = static_cast<int>(args.get_int("d", 64));

  print_header("Figure 7: compression rate vs division number n",
               "gentle growth with n; proposed above simple "
               "(simple 11.06->12.10%, proposed 14.43->16.75%)");
  std::printf("workload: MiniClimate %zux%zux%zu, %llu warmup steps, d=%d\n\n",
              workload.config.nx, workload.config.ny, workload.config.nz,
              static_cast<unsigned long long>(workload.warmup_steps), d);

  MiniClimate model(workload.config);
  model.run(workload.warmup_steps);

  auto rate = [&](const NdArray<double>& a, QuantizerKind kind, int n) {
    CompressionParams p;
    p.quantizer.kind = kind;
    p.quantizer.divisions = n;
    p.quantizer.spike_partitions = d;
    return WaveletCompressor(p).compress(a).compression_rate_percent();
  };

  print_row({"n", "simple [%]", "proposed [%]"});
  for (int n = 1; n <= 128; n *= 2) {
    print_row({std::to_string(n),
               fmt("%.2f", rate(model.temperature(), QuantizerKind::kSimple, n)),
               fmt("%.2f", rate(model.temperature(), QuantizerKind::kSpike, n))});
  }

  std::printf("\nPer-variable compression rates at n=128 (Sec. IV-C: simple 11-13%%,\n");
  std::printf("proposed 13-29%% across NICAM arrays):\n\n");
  print_row({"variable", "simple [%]", "proposed [%]"}, 16);
  for (const auto& f : model.fields()) {
    print_row({f.name, fmt("%.2f", rate(*f.array, QuantizerKind::kSimple, 128)),
               fmt("%.2f", rate(*f.array, QuantizerKind::kSpike, 128))},
              16);
  }
  return 0;
}
