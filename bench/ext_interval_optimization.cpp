// Extension: checkpoint-interval optimization with lossy compression —
// the paper's stated future work ("optimizing checkpoint frequency by
// checkpointing model for lossy compression").
//
// Measures this machine's checkpoint cost with three codecs (none /
// gzip / wavelet-lossy), scales the I/O component with the Fig. 9
// storage model at a chosen parallelism, then sweeps MTBF from a day
// down to the paper's projected exascale "few hours" [4] and reports
// the Young/Daly-optimal interval and machine efficiency per strategy.
//
// Expectation: as MTBF shrinks, the efficiency gap between lossy
// compression and no compression widens — lossy checkpointing keeps the
// machine useful where raw checkpointing wastes a large fraction.
#include <cstdio>

#include "bench_common.hpp"
#include "ckpt/codec.hpp"
#include "core/synthetic.hpp"
#include "iomodel/cost_model.hpp"
#include "multilevel/interval_model.hpp"

using namespace wck;
using namespace wck::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto parallelism = static_cast<std::size_t>(args.get_int("procs", 2048));
  const double bandwidth = args.get_double("bandwidth-gbs", 20.0) * 1e9;
  // The paper's experiments were limited to 1.5 MB/process by the
  // available NICAM input data; production runs checkpoint most of the
  // node memory. Stage times are measured on a 1.5 MB array and scaled
  // linearly (the pipeline is O(n), verified by micro_stages).
  const double gb_per_process = args.get_double("gb-per-process", 1.5);

  print_header("Extension: optimal checkpoint interval vs MTBF per strategy",
               "lossy compression widens its efficiency lead as MTBF shrinks");

  const auto field = make_temperature_field(Shape{1156, 82, 2}, 1);
  const StorageModel storage{bandwidth, 0.0};
  const double scale = gb_per_process * 1e9 / static_cast<double>(field.size_bytes());

  auto strategy_for = [&](const Codec& codec, const std::string& name) {
    StageTimes measured;
    const Bytes payload = codec.encode(field, &measured);
    const double rate = static_cast<double>(payload.size()) /
                        static_cast<double>(field.size_bytes());
    StageTimes scaled;
    for (const auto& [k, v] : measured.by_stage()) scaled.add(k, v * scale);
    const CheckpointCostModel model(gb_per_process * 1e9, rate, scaled, storage);
    // Restart cost ~= read back + decode; approximate as symmetric.
    const double ckpt_s = model.time_with_compression(parallelism);
    const double restart_s = ckpt_s;
    std::printf("  %-14s rate %6.2f %%  checkpoint at P=%zu: %.1f s\n", name.c_str(),
                rate * 100.0, parallelism, ckpt_s);
    return Strategy{name, ckpt_s, restart_s};
  };

  std::printf("strategies (P = %zu, %.0f GB/s PFS, %.1f GB/process, stage times\n"
              "measured on 1.5 MB and scaled by O(n)):\n",
              parallelism, bandwidth / 1e9, gb_per_process);
  const NullCodec none;
  const GzipCodec gz;
  CompressionParams lossy_params;
  lossy_params.quantizer.divisions = 128;
  const WaveletLossyCodec lossy(lossy_params);
  std::vector<Strategy> strategies = {
      strategy_for(none, "none"),
      strategy_for(gz, "gzip"),
      strategy_for(lossy, "wavelet-lossy"),
  };
  // "none" pays no compression time at all, only I/O.
  strategies[0].checkpoint_seconds =
      gb_per_process * 1e9 * static_cast<double>(parallelism) / bandwidth;
  strategies[0].restart_seconds = strategies[0].checkpoint_seconds;

  const std::vector<double> mtbfs = {86400.0, 21600.0, 7200.0, 3600.0, 1800.0, 900.0};
  const auto rows = sweep_strategies(strategies, mtbfs);

  std::printf("\n%-12s", "MTBF");
  for (const auto& s : strategies) std::printf("%-26s", (s.name + " (tau, eff)").c_str());
  std::printf("\n");
  for (const auto& row : rows) {
    std::printf("%-12s", fmt("%.1f h", row.mtbf_seconds / 3600.0).c_str());
    for (const auto& o : row.by_strategy) {
      std::printf("%-26s",
                  (fmt("%.0f s", o.interval_seconds) + ", " + fmt("%.1f%%", o.efficiency * 100))
                      .c_str());
    }
    std::printf("\n");
  }
  return 0;
}
