// Ablation: does the wavelet front-end earn its keep?
//
// Compares the full pipeline (Haar transform before quantization)
// against quantizing the raw values directly (transform depth still 1
// but applied to data whose high "bands" are just raw samples is not
// expressible in the pipeline, so we emulate no-wavelet by compressing
// the value distribution directly: quantize all array values with the
// same machinery, then deflate).
//
// Expectation (paper Sec. II-C / III-A): the transform concentrates
// high-band values near zero, so at equal n the wavelet path yields a
// far smaller error for comparable size — raw quantization must spread
// its n representative values over the whole physical range.
#include <cstdio>

#include "bench_common.hpp"
#include "core/compressor.hpp"
#include "deflate/deflate.hpp"
#include "encode/payload.hpp"
#include "quantize/quantizer.hpp"
#include "stats/error_metrics.hpp"

using namespace wck;
using namespace wck::bench;

namespace {

/// No-wavelet strawman: quantize the raw array values with the same
/// quantizer + bitmap + index encoding + deflate, skipping the
/// transform.
struct RawResult {
  double rate_percent;
  double mean_err_percent;
  double max_err_percent;
};

RawResult raw_quantize(const NdArray<double>& a, QuantizerKind kind, int n, int d) {
  const QuantizerConfig cfg{kind, n, d};
  const QuantizationScheme scheme = QuantizationScheme::analyze(a.values(), cfg);

  LossyPayload p;
  p.shape = a.shape();
  p.levels = 1;
  p.quantizer = kind;
  p.averages = scheme.averages();
  // Treat everything as "high band": low band empty is not allowed by
  // the payload (sizes must sum), so keep one element exact as "low".
  p.low_band = {a[0]};
  p.quantized = Bitmap(a.size() - 1);
  NdArray<double> recon = a;
  for (std::size_t i = 1; i < a.size(); ++i) {
    const int idx = scheme.classify(a[i]);
    if (idx >= 0) {
      p.quantized.set(i - 1, true);
      p.indices.push_back(static_cast<std::uint8_t>(idx));
      recon[i] = scheme.averages()[static_cast<std::size_t>(idx)];
    } else {
      p.exact_values.push_back(a[i]);
    }
  }
  const Bytes payload = encode_payload(p);
  const Bytes z = zlib_compress(payload);
  const auto err = relative_error(a.values(), recon.values());
  return {compression_rate_percent(a.size_bytes(), z.size() + 1), err.mean_rel_percent(),
          err.max_rel_percent()};
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto workload = climate_workload_from_args(args);
  const int d = static_cast<int>(args.get_int("d", 64));

  print_header("Ablation: wavelet front-end vs raw-value quantization",
               "wavelet path: much smaller error at comparable rate");
  MiniClimate model(workload.config);
  model.run(workload.warmup_steps);
  const auto& temp = model.temperature();

  print_row({"n", "variant", "rate [%]", "avg err [%]", "max err [%]"}, 16);
  for (const int n : {16, 128}) {
    for (const auto kind : {QuantizerKind::kSimple, QuantizerKind::kSpike}) {
      const char* kname = kind == QuantizerKind::kSimple ? "simple" : "proposed";

      CompressionParams p;
      p.quantizer.kind = kind;
      p.quantizer.divisions = n;
      p.quantizer.spike_partitions = d;
      const auto rt = WaveletCompressor(p).round_trip(temp);
      print_row({std::to_string(n), std::string("wavelet+") + kname,
                 fmt("%.2f", rt.compressed.compression_rate_percent()),
                 fmt("%.4f", rt.error.mean_rel_percent()),
                 fmt("%.4f", rt.error.max_rel_percent())},
                16);

      const auto raw = raw_quantize(temp, kind, n, d);
      print_row({std::to_string(n), std::string("raw+") + kname, fmt("%.2f", raw.rate_percent),
                 fmt("%.4f", raw.mean_err_percent), fmt("%.4f", raw.max_err_percent)},
                16);
    }
  }
  return 0;
}
