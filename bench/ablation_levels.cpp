// Ablation: wavelet transform depth (the paper uses a single level).
//
// Deeper transforms shrink the stored-raw low band and concentrate more
// coefficients near zero, but each extra level also widens the value
// distribution the quantizer must cover. This sweep maps the trade-off.
#include <cstdio>

#include "bench_common.hpp"
#include "core/compressor.hpp"

using namespace wck;
using namespace wck::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto workload = climate_workload_from_args(args);
  const int n = static_cast<int>(args.get_int("n", 128));
  const int d = static_cast<int>(args.get_int("d", 64));

  print_header("Ablation: wavelet transform depth (paper: 1 level)",
               "depth trades low-band size against quantizer span");
  MiniClimate model(workload.config);
  model.run(workload.warmup_steps);
  const auto& temp = model.temperature();

  print_row({"levels", "rate [%]", "avg err [%]", "max err [%]", "low band [%]"}, 15);
  for (int levels = 1; levels <= 4; ++levels) {
    CompressionParams p;
    p.quantizer.kind = QuantizerKind::kSpike;
    p.quantizer.divisions = n;
    p.quantizer.spike_partitions = d;
    p.wavelet_levels = levels;
    const auto rt = WaveletCompressor(p).round_trip(temp);
    const double low_frac = 100.0 *
                            static_cast<double>(temp.size() - rt.compressed.high_count) /
                            static_cast<double>(temp.size());
    print_row({std::to_string(levels), fmt("%.2f", rt.compressed.compression_rate_percent()),
               fmt("%.4f", rt.error.mean_rel_percent()),
               fmt("%.4f", rt.error.max_rel_percent()), fmt("%.2f", low_frac)},
              15);
  }
  return 0;
}
