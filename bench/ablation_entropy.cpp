// Ablation: the final entropy stage.
//
// Compares (a) no entropy coding, (b) in-memory deflate (the paper's
// Sec. IV-D suggested improvement: "this cost will be mostly eliminated
// by compressing the temporary checkpoint data with zlib in memory"),
// and (c) gzip through temporary files (the paper's implementation).
//
// Expectation: (b) and (c) produce nearly identical sizes; (c) pays a
// large extra time cost, dominating the compression breakdown as in
// Fig. 9.
#include <cstdio>

#include "bench_common.hpp"
#include "core/compressor.hpp"
#include "core/synthetic.hpp"

using namespace wck;
using namespace wck::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto nx = static_cast<std::size_t>(args.get_int("nx", 1156));
  const auto ny = static_cast<std::size_t>(args.get_int("ny", 82));
  const auto nz = static_cast<std::size_t>(args.get_int("nz", 2));
  const int repeats = static_cast<int>(args.get_int("repeats", 5));

  print_header("Ablation: entropy stage (none / in-memory deflate / temp-file gzip)",
               "deflate ~= gzip size; temp-file path much slower (paper Sec. IV-D)");
  const auto field = make_temperature_field(Shape{nx, ny, nz}, 2015);
  std::printf("array: %zux%zux%zu (%.2f MB), %d repeats\n\n", nx, ny, nz,
              static_cast<double>(field.size_bytes()) / 1e6, repeats);

  print_row({"entropy mode", "rate [%]", "entropy time [ms]", "total time [ms]"}, 20);
  for (const auto mode : {EntropyMode::kNone, EntropyMode::kHuffmanOnly, EntropyMode::kDeflate,
                          EntropyMode::kTempFileGzip}) {
    CompressionParams p;
    p.quantizer.divisions = 128;
    p.entropy = mode;
    const WaveletCompressor c(p);

    double rate = 0.0;
    StageTimes stages;
    for (int r = 0; r < repeats; ++r) {
      const auto comp = c.compress(field);
      stages.merge(comp.times);
      rate = comp.compression_rate_percent();
    }
    const double entropy_ms =
        (stages.get("gzip") + stages.get("temp_file_write")) / repeats * 1e3;
    const double total_ms = stages.total() / repeats * 1e3;
    const char* name = "temp-file gzip";
    if (mode == EntropyMode::kNone) name = "none";
    if (mode == EntropyMode::kHuffmanOnly) name = "huffman-only";
    if (mode == EntropyMode::kDeflate) name = "in-memory deflate";
    print_row({name, fmt("%.2f", rate), fmt("%.3f", entropy_ms), fmt("%.3f", total_ms)}, 20);
  }
  return 0;
}
