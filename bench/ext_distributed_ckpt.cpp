// Extension: distributed per-rank checkpointing on the domain-
// decomposed MiniClimate — the paper's actual deployment model
// ("compression of checkpoints of each process can be done in an
// embarrassingly parallel fashion", Sec. IV-D), executed rather than
// assumed.
//
// R ranks run the distributed model (bit-identical to serial), each
// compressing and writing its own slab. Reports per-rank sizes/rates
// per codec, verifies a coordinated lossy restart, and measures the
// restart error against the unperturbed trajectory.
#include <cstdio>
#include <filesystem>
#include <mutex>

#include "bench_common.hpp"
#include "ckpt/codec.hpp"
#include "climate/distributed.hpp"
#include "stats/error_metrics.hpp"

using namespace wck;
using namespace wck::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto ranks = static_cast<std::size_t>(args.get_int("ranks", 4));
  const auto warmup = static_cast<std::uint64_t>(args.get_int("warmup-steps", 200));
  const auto extra = static_cast<std::uint64_t>(args.get_int("extra-steps", 200));

  ClimateConfig config;
  config.nx = static_cast<std::size_t>(args.get_int("nx", 64));
  config.ny = static_cast<std::size_t>(args.get_int("ny", 32));
  config.nz = static_cast<std::size_t>(args.get_int("nz", 4));

  print_header("Extension: distributed per-rank checkpointing",
               "per-rank slabs compress independently at whole-field rates; "
               "coordinated lossy restart shows Fig. 10 behaviour");
  std::printf("grid %zux%zux%zu over %zu ranks; checkpoint at step %llu\n\n", config.nx,
              config.ny, config.nz, ranks, static_cast<unsigned long long>(warmup));

  const auto dir = std::filesystem::temp_directory_path() / "wck_dist_bench";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  CompressionParams params;
  params.quantizer.divisions = 128;
  const WaveletLossyCodec lossy(params);
  const GzipCodec gzip_codec;

  World world(ranks);
  std::mutex print_mu;
  world.run([&](Comm& comm) {
    DistributedClimate model(config, comm);
    model.run(warmup);

    // Per-rank checkpoints with both codecs.
    const CheckpointInfo gz = model.write_local_checkpoint(dir, gzip_codec);
    const double gz_rate = gz.compression_rate_percent();
    const CheckpointInfo lz = model.write_local_checkpoint(dir, lossy);
    {
      std::lock_guard lk(print_mu);
      std::printf("rank %zu: slab %7zu B | gzip %6.2f %% | lossy %6.2f %% "
                  "(codec %.1f ms)\n",
                  comm.rank(), gz.original_bytes, gz_rate, lz.compression_rate_percent(),
                  lz.times.total() * 1e3);
    }

    // Coordinated lossy restart: every rank reloads its slab, then the
    // restarted run is compared against an unperturbed twin.
    DistributedClimate twin(config, comm);
    twin.run(warmup);
    model.read_local_checkpoint(dir, warmup);
    model.run(extra);
    twin.run(extra);

    const auto mine = model.local_temperature();
    const auto ref = twin.local_temperature();
    const auto err = relative_error(ref.values(), mine.values());
    const double worst = comm.allreduce_max(err.mean_rel_percent());
    if (comm.rank() == 0) {
      std::lock_guard lk(print_mu);
      std::printf("\nafter %llu post-restart steps: worst per-rank avg error %.5f %%\n",
                  static_cast<unsigned long long>(extra), worst);
    }
  });

  std::filesystem::remove_all(dir);
  return 0;
}
