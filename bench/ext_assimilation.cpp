// Extension: lossy restart under data assimilation — closing the loop
// on the paper's Sec. II-B error-tolerance argument.
//
// Fig. 10 protocol (checkpoint at step 720, lossy restart, continue),
// run twice: free-running (the paper's experiment) and with periodic
// nudging assimilation toward sparse noisy observations of the truth.
//
// Expectation: the free-running error random-walks upward (Fig. 10);
// with assimilation it saturates near the observation noise floor —
// lossy checkpoint errors are "corrected away" just like model and
// sensor errors are in production workflows.
#include <cstdio>

#include "bench_common.hpp"
#include "ckpt/codec.hpp"
#include "climate/assimilation.hpp"
#include "stats/error_metrics.hpp"

using namespace wck;
using namespace wck::bench;

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const auto workload = climate_workload_from_args(args);
  const auto extra = static_cast<std::uint64_t>(args.get_int("extra-steps", 1500));
  const auto every = static_cast<std::uint64_t>(args.get_int("sample-every", 100));
  const int n = static_cast<int>(args.get_int("n", 128));

  print_header("Extension: lossy restart with vs without data assimilation",
               "free error grows (Fig. 10); assimilated error saturates low");
  std::printf("workload: MiniClimate %zux%zux%zu, checkpoint at %llu, +%llu steps, "
              "assimilate every %llu steps\n\n",
              workload.config.nx, workload.config.ny, workload.config.nz,
              static_cast<unsigned long long>(workload.warmup_steps),
              static_cast<unsigned long long>(extra),
              static_cast<unsigned long long>(every));

  // Truth trajectory and two restarted twins.
  MiniClimate truth(workload.config);
  truth.run(workload.warmup_steps);

  CompressionParams params;
  params.quantizer.divisions = n;
  const WaveletLossyCodec codec(params);
  const Bytes zeta_c = codec.encode(truth.vorticity());
  const Bytes temp_c = codec.encode(truth.temperature());
  const NdArray<double> zeta_r = codec.decode(zeta_c);
  const NdArray<double> temp_r = codec.decode(temp_c);

  MiniClimate free_run(workload.config);
  free_run.restore(zeta_r, temp_r, truth.step_count());
  MiniClimate da_run(workload.config);
  da_run.restore(zeta_r, temp_r, truth.step_count());
  // Two truth instances keep lockstep with their twins.
  MiniClimate truth2(workload.config);
  truth2.restore(truth.vorticity(), truth.temperature(), truth.step_count());

  AssimilationConfig da_cfg;
  da_cfg.stride = 4;
  da_cfg.nudging_strength = 0.3;
  da_cfg.observation_noise = 0.05;  // imperfect sensors (Sec. II-B)
  NudgingAssimilator da(da_cfg);

  print_row({"step", "free avg err [%]", "assimilated avg err [%]"}, 24);
  for (std::uint64_t s = 0; s < extra; s += every) {
    truth.run(every);
    free_run.run(every);
    truth2.run(every);
    da_run.run(every);
    da.assimilate(da_run, truth2);

    const auto free_err =
        relative_error(truth.temperature().values(), free_run.temperature().values());
    const auto da_err =
        relative_error(truth2.temperature().values(), da_run.temperature().values());
    print_row({std::to_string(free_run.step_count()), fmt("%.5f", free_err.mean_rel_percent()),
               fmt("%.5f", da_err.mean_rel_percent())},
              24);
  }
  return 0;
}
