# Sanitizer build modes (WCK_SANITIZE).
#
# WCK_SANITIZE is a semicolon-separated list of sanitizers applied to
# every target in the tree (src/, tools/, tests/, bench/, examples/):
#
#   -DWCK_SANITIZE=address;undefined   # ASan + UBSan (the default CI combo)
#   -DWCK_SANITIZE=thread              # TSan (mutually exclusive with ASan)
#   -DWCK_SANITIZE=memory              # MSan (requires Clang + instrumented libc++)
#   -DWCK_SANITIZE=leak                # standalone LSan
#
# Flags are applied globally (add_compile_options / add_link_options)
# rather than per-target so that every library, test and tool — including
# ones added by future PRs — is instrumented without further plumbing.
# Mixing instrumented and uninstrumented translation units is the classic
# way to get false negatives, so global scope is deliberate.

set(WCK_SANITIZE "" CACHE STRING
    "Semicolon-separated sanitizers: address;undefined | thread | memory | leak (empty = off)")

set(_wck_known_sanitizers address undefined thread memory leak)

function(wck_enable_sanitizers)
  if(NOT WCK_SANITIZE)
    return()
  endif()

  foreach(san IN LISTS WCK_SANITIZE)
    if(NOT san IN_LIST _wck_known_sanitizers)
      message(FATAL_ERROR
        "WCK_SANITIZE: unknown sanitizer '${san}' "
        "(expected one of: ${_wck_known_sanitizers})")
    endif()
  endforeach()

  if("thread" IN_LIST WCK_SANITIZE AND
     ("address" IN_LIST WCK_SANITIZE OR "leak" IN_LIST WCK_SANITIZE OR
      "memory" IN_LIST WCK_SANITIZE))
    message(FATAL_ERROR
      "WCK_SANITIZE: 'thread' cannot be combined with address/leak/memory "
      "(the runtimes are mutually exclusive)")
  endif()
  if("memory" IN_LIST WCK_SANITIZE AND NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    message(FATAL_ERROR
      "WCK_SANITIZE=memory requires Clang (GCC has no MemorySanitizer); "
      "current compiler is ${CMAKE_CXX_COMPILER_ID}. "
      "Use -DCMAKE_CXX_COMPILER=clang++ or pick address;undefined / thread.")
  endif()

  string(REPLACE ";" "," _san_csv "${WCK_SANITIZE}")
  add_compile_options(-fsanitize=${_san_csv} -fno-omit-frame-pointer -g)
  add_link_options(-fsanitize=${_san_csv})

  if("undefined" IN_LIST WCK_SANITIZE)
    # Abort on the first UB report so ctest actually fails; recoverable
    # reports otherwise print and continue, and a green run means nothing.
    add_compile_options(-fno-sanitize-recover=all)
  endif()
  if("memory" IN_LIST WCK_SANITIZE)
    add_compile_options(-fsanitize-memory-track-origins)
  endif()

  message(STATUS "Sanitizers enabled: ${WCK_SANITIZE}")
endfunction()

wck_enable_sanitizers()
